// Torture harness: kill-and-resume crash recovery for the latent_mine
// --refresh-from path.
//
// Mines a base slice of a synthetic HIN corpus once (checkpointed,
// uninterrupted), then repeatedly runs an incremental refresh that folds
// in a ~5% delta slice — SIGKILLing the refresh at staggered points,
// resuming with --resume after every kill, and finally byte-comparing the
// refreshed tree against an uninterrupted reference refresh. Thread counts
// alternate across attempts so the comparison also exercises the refresh's
// cross-thread-count determinism contract.
//
// Registered with ctest under the "torture" and "refresh" labels (see
// tests/CMakeLists.txt): ctest -L refresh
// Usage: torture_kill_refresh_test <path-to-latent_mine>
// A missing/invalid binary path skips the test (exit 0) so the harness
// never breaks builds that do not produce the tool.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/io.h"
#include "data/synthetic_hin.h"

namespace {

using namespace latent;

std::string g_dir;

std::string Path(const std::string& name) { return g_dir + "/" + name; }

int Fail(const std::string& why) {
  std::fprintf(stderr, "FAIL: %s\n", why.c_str());
  return 1;
}

// Spawns `latent_mine` with stdout/stderr appended to a log file. Returns
// the child pid, or -1 on fork failure.
pid_t Spawn(const std::vector<std::string>& args) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  int fd =
      ::open(Path("mine.log").c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

struct WaitResult {
  bool exited = false;  // normal exit (vs signal)
  int code = -1;        // exit code when exited
  bool killed_by_us = false;
};

// Waits for `pid`, killing it with SIGKILL after `kill_after_ms` (< 0 =
// never kill, wait for completion).
WaitResult AwaitOrKill(pid_t pid, long long kill_after_ms) {
  WaitResult r;
  if (kill_after_ms >= 0) {
    long long waited = 0;
    while (waited < kill_after_ms) {
      int status = 0;
      pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        r.exited = WIFEXITED(status);
        r.code = r.exited ? WEXITSTATUS(status) : -1;
        return r;
      }
      ::usleep(5000);
      waited += 5;
    }
    ::kill(pid, SIGKILL);
    r.killed_by_us = true;
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!r.killed_by_us) {
    r.exited = WIFEXITED(status);
    r.code = r.exited ? WEXITSTATUS(status) : -1;
  }
  return r;
}

// Shared trunk of every latent_mine invocation: the BASE corpus and
// entities plus the pipeline knobs the base checkpoint was recorded under.
std::vector<std::string> CommonArgs(const std::string& mine,
                                    const std::string& out, int threads) {
  return {
      mine,            "--corpus", Path("base_corpus.txt"),
      "--entities",    Path("base_entities.tsv"),
      "--levels",      "3,2",
      "--min-support", "4",
      "--seed",        "7",
      "--threads",     std::to_string(threads),
      "--save",        out,
  };
}

std::vector<std::string> RefreshArgs(const std::string& mine,
                                     const std::string& out, int threads,
                                     bool checkpoint) {
  std::vector<std::string> args = CommonArgs(mine, out, threads);
  args.insert(args.end(),
              {"--refresh-from", Path("base_tree.bin"),
               "--delta-corpus", Path("delta_corpus.txt"),
               "--delta-entities", Path("delta_entities.tsv"),
               "--base-checkpoint-dir", Path("ckpt_base")});
  if (checkpoint) {
    args.insert(args.end(), {"--checkpoint-dir", Path("ckpt_refresh"),
                             "--checkpoint-every", "1", "--resume"});
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || ::access(argv[1], X_OK) != 0) {
    std::fprintf(stderr, "SKIP: latent_mine binary not given/executable\n");
    return 0;
  }
  const std::string mine = argv[1];
  const char* tmp = std::getenv("TMPDIR");
  g_dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/latent_torture_refresh";
  ::system(("rm -rf " + g_dir).c_str());
  if (::mkdir(g_dir.c_str(), 0755) != 0) return Fail("cannot mkdir " + g_dir);

  // Synthesize one dataset and split it: the first 95% of documents are the
  // base slice, the tail is the delta the refresh folds in. Entity names
  // are shared across the split so delta attachments re-intern onto the
  // base universes by name.
  data::HinDatasetOptions dopt = data::DblpLikeOptions(1200, 55);
  dopt.num_areas = 3;
  dopt.subareas_per_area = 2;
  data::HinDataset ds = data::GenerateHinDataset(dopt);
  const int n = ds.corpus.num_docs();
  const int cut = n - n / 20;
  {
    std::string base_txt, delta_txt;
    for (int d = 0; d < n; ++d) {
      const text::Document& doc = ds.corpus.docs()[d];
      std::string line;
      for (int id : doc.tokens) {
        if (!line.empty()) line += " ";
        line += ds.corpus.vocab().Token(id);
      }
      (d < cut ? base_txt : delta_txt) += line + "\n";
    }
    if (!data::WriteFile(Path("base_corpus.txt"), base_txt).ok() ||
        !data::WriteFile(Path("delta_corpus.txt"), delta_txt).ok()) {
      return Fail("cannot write corpora");
    }
    std::string base_tsv, delta_tsv;
    for (int d = 0; d < static_cast<int>(ds.entity_docs.size()); ++d) {
      const auto& types = ds.entity_docs[d].entities;
      for (size_t t = 0; t < types.size(); ++t) {
        for (int id : types[t]) {
          const int rel = d < cut ? d : d - cut;
          (d < cut ? base_tsv : delta_tsv) +=
              std::to_string(rel) + "\t" + ds.entity_type_names[t] + "\te" +
              std::to_string(t) + "_" + std::to_string(id) + "\n";
        }
      }
    }
    if (!data::WriteFile(Path("base_entities.tsv"), base_tsv).ok() ||
        !data::WriteFile(Path("delta_entities.tsv"), delta_tsv).ok()) {
      return Fail("cannot write entities");
    }
  }

  // Base mine: one uninterrupted checkpointed run over the base slice. Its
  // checkpoint directory is the refresh's --base-checkpoint-dir.
  {
    std::vector<std::string> args =
        CommonArgs(mine, Path("base_tree.bin"), /*threads=*/8);
    args.insert(args.end(), {"--checkpoint-dir", Path("ckpt_base"),
                             "--checkpoint-every", "1"});
    WaitResult r = AwaitOrKill(Spawn(args), /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 0) {
      return Fail("base mine failed (see " + Path("mine.log") + ")");
    }
  }

  // Reference: one uninterrupted, checkpoint-free refresh.
  {
    WaitResult r = AwaitOrKill(
        Spawn(RefreshArgs(mine, Path("ref.bin"), /*threads=*/1,
                          /*checkpoint=*/false)),
        /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 0) {
      return Fail("reference refresh failed (see " + Path("mine.log") + ")");
    }
  }
  auto ref = data::ReadFile(Path("ref.bin"));
  if (!ref.ok()) return Fail("reference refreshed tree missing");

  // Kill-and-resume loop: SIGKILL the checkpointed refresh at staggered
  // delays, alternating thread counts, resuming each time. Stops as soon
  // as one attempt survives to completion.
  int kills = 0;
  bool completed = false;
  const int kMaxAttempts = 12;
  for (int attempt = 0; attempt < kMaxAttempts && !completed; ++attempt) {
    const int threads = attempt % 2 == 0 ? 1 : 8;
    const long long delay_ms = 30 + 50LL * attempt;  // staggered kill points
    WaitResult r = AwaitOrKill(
        Spawn(RefreshArgs(mine, Path("out.bin"), threads,
                          /*checkpoint=*/true)),
        delay_ms);
    if (r.killed_by_us) {
      ++kills;
      continue;
    }
    if (!r.exited || r.code != 0) {
      return Fail("interrupted refresh exited with an error (attempt " +
                  std::to_string(attempt) + ", see " + Path("mine.log") + ")");
    }
    completed = true;
  }
  if (!completed) {
    // Every staggered attempt was killed first; one final uninterrupted
    // resume must finish the job.
    WaitResult r = AwaitOrKill(
        Spawn(RefreshArgs(mine, Path("out.bin"), /*threads=*/8,
                          /*checkpoint=*/true)),
        /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 0) return Fail("final refresh resume failed");
  }

  auto out = data::ReadFile(Path("out.bin"));
  if (!out.ok()) return Fail("resumed refreshed tree missing");
  if (out.value() != ref.value()) {
    return Fail(
        "resumed refreshed tree differs from the uninterrupted reference (" +
        std::to_string(kills) + " kills)");
  }

  // CLI contract: refresh flags without --refresh-from are a usage error
  // (exit 2), not silently ignored.
  {
    WaitResult r = AwaitOrKill(
        Spawn({mine, "--corpus", Path("base_corpus.txt"), "--delta-corpus",
               Path("delta_corpus.txt")}),
        /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 2) {
      return Fail("--delta-corpus without --refresh-from should exit 2, got " +
                  std::to_string(r.code));
    }
  }

  std::fprintf(stderr,
               "PASS: byte-identical refreshed trees after %d SIGKILL "
               "interruption(s)\n",
               kills);
  return 0;
}
