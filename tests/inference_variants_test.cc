// Tests for the alternative inference engines and document inference:
// Gibbs link clustering, entity-enriched LDA, anchor-word recovery, and
// hierarchy document allocation.
#include <gtest/gtest.h>

#include "baselines/anchor_words.h"
#include "baselines/entity_lda.h"
#include "common/math_util.h"
#include "core/builder.h"
#include "core/doc_inference.h"
#include "core/gibbs_clusterer.h"
#include "data/lda_gen.h"
#include "data/synthetic_hin.h"
#include "eval/clustering_metrics.h"

namespace latent {
namespace {

hin::HeteroNetwork TwoBlockNet() {
  hin::HeteroNetwork net({"term"}, {10});
  int lt = net.AddLinkType(0, 0);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      net.AddLink(lt, i, j, 10.0);
      net.AddLink(lt, i + 5, j + 5, 10.0);
    }
  }
  net.AddLink(lt, 0, 5, 1.0);
  net.Coalesce();
  return net;
}

TEST(GibbsClustererTest, RecoversPlantedBlocks) {
  hin::HeteroNetwork net = TwoBlockNet();
  core::GibbsClusterOptions opt;
  opt.num_topics = 2;
  opt.iterations = 150;
  opt.seed = 7;
  core::ClusterResult r = core::FitClusterGibbs(net, opt);
  EXPECT_NEAR(Sum(r.rho), 1.0, 1e-9);
  // Block membership by argmax phi.
  auto argmax = [&](int i) {
    return r.phi[0][0][i] > r.phi[1][0][i] ? 0 : 1;
  };
  int b0 = argmax(0);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(argmax(i), b0);
  for (int i = 5; i < 10; ++i) EXPECT_NE(argmax(i), b0);
}

TEST(GibbsClustererTest, AgreesWithEmOnEasyData) {
  hin::HeteroNetwork net = TwoBlockNet();
  // Pick the best of a few chains (Gibbs is multimodal on weighted links).
  core::ClusterResult gibbs;
  double best_post = -1e300;
  for (uint64_t seed : {7ULL, 9ULL, 21ULL}) {
    core::GibbsClusterOptions gopt;
    gopt.num_topics = 2;
    gopt.iterations = 200;
    gopt.seed = seed;
    core::ClusterResult r = core::FitClusterGibbs(net, gopt);
    if (r.log_likelihood > best_post) {
      best_post = r.log_likelihood;
      gibbs = std::move(r);
    }
  }

  core::ClusterOptions eopt;
  eopt.num_topics = 2;
  eopt.background = false;
  eopt.restarts = 3;
  eopt.seed = 9;
  core::ClusterResult em =
      core::FitCluster(net, core::DegreeDistributions(net), eopt);

  // Same partition up to label permutation: compare argmax assignments.
  std::vector<int> ga(10), ea(10);
  for (int i = 0; i < 10; ++i) {
    ga[i] = gibbs.phi[0][0][i] > gibbs.phi[1][0][i] ? 0 : 1;
    ea[i] = em.phi[0][0][i] > em.phi[1][0][i] ? 0 : 1;
  }
  EXPECT_NEAR(eval::NormalizedMutualInformation(ga, ea), 1.0, 1e-9);
}

TEST(EntityLdaTest, RecoversEntityTopicAffinity) {
  data::HinDatasetOptions gopt = data::DblpLikeOptions(800, 77);
  gopt.num_areas = 3;
  gopt.subareas_per_area = 1;
  data::HinDataset ds = data::GenerateHinDataset(gopt);
  baselines::EntityLdaOptions opt;
  opt.num_topics = 3;
  opt.iterations = 80;
  opt.seed = 5;
  baselines::EntityLdaResult r = baselines::FitEntityLda(
      ds.corpus, ds.entity_type_sizes, ds.entity_docs, opt);
  ASSERT_EQ(r.phi.size(), 3u);
  // Distributions normalize per type.
  for (int z = 0; z < 3; ++z) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_NEAR(Sum(r.phi[z][x]), 1.0, 1e-9);
    }
  }
  // Hard doc clustering from theta should track planted areas well.
  std::vector<int> assignment(ds.corpus.num_docs());
  for (int d = 0; d < ds.corpus.num_docs(); ++d) {
    assignment[d] = static_cast<int>(
        std::max_element(r.doc_topic[d].begin(), r.doc_topic[d].end()) -
        r.doc_topic[d].begin());
  }
  EXPECT_GT(eval::NormalizedMutualInformation(assignment, ds.doc_area), 0.6);
}

TEST(AnchorWordsTest, RecoversSeparatedTopics) {
  data::LdaGenOptions gopt;
  gopt.num_topics = 3;
  gopt.vocab_size = 60;
  gopt.num_docs = 4000;
  gopt.doc_length = 30;
  gopt.topic_sparsity = 0.03;  // sparse topics -> anchors exist
  gopt.seed = 13;
  data::LdaDataset ds = data::GenerateLdaDataset(gopt);
  baselines::AnchorWordsOptions opt;
  opt.num_topics = 3;
  baselines::AnchorWordsResult r =
      baselines::FitAnchorWords(ds.docs, ds.vocab_size, opt);
  ASSERT_EQ(r.topic_word.size(), 3u);
  ASSERT_EQ(r.anchors.size(), 3u);
  for (const auto& phi : r.topic_word) {
    EXPECT_NEAR(Sum(phi), 1.0, 1e-8);
  }
  double err = MatchedL1Error(ds.true_topic_word, r.topic_word);
  EXPECT_LT(err, 0.8) << "anchor recovery should be in the ballpark";
}

TEST(DocInferenceTest, AllocationFollowsTopics) {
  // Hand-built 2-topic tree; a doc of topic-1 words should allocate there.
  core::TopicHierarchy tree({"term", "author"}, {4, 2});
  tree.AddRoot({{0.25, 0.25, 0.25, 0.25}, {0.5, 0.5}}, 10.0);
  tree.AddChild(0, 0.5, {{0.5, 0.5, 0.0, 0.0}, {1.0, 0.0}}, 5.0);
  tree.AddChild(0, 0.5, {{0.0, 0.0, 0.5, 0.5}, {0.0, 1.0}}, 5.0);
  auto f = core::InferDocumentAllocation(tree, {0, 1, 0}, {{0}});
  EXPECT_NEAR(f[0], 1.0, 1e-12);
  EXPECT_GT(f[1], 0.99);
  EXPECT_LT(f[2], 0.01);
  EXPECT_NEAR(f[1] + f[2], 1.0, 1e-9);
}

TEST(DocInferenceTest, AssignmentRecoversPlantedAreas) {
  data::HinDatasetOptions gopt = data::DblpLikeOptions(1200, 88);
  gopt.num_areas = 3;
  gopt.subareas_per_area = 2;
  data::HinDataset ds = data::GenerateHinDataset(gopt);
  hin::HeteroNetwork net = hin::BuildCollapsedNetwork(
      ds.corpus, ds.entity_type_names, ds.entity_type_sizes, ds.entity_docs);
  core::BuildOptions bopt;
  bopt.levels_k = {3};
  bopt.max_depth = 1;
  bopt.cluster.restarts = 2;
  bopt.cluster.max_iters = 60;
  bopt.cluster.seed = 3;
  core::TopicHierarchy tree = core::BuildHierarchy(net, bopt);
  std::vector<int> assignment =
      core::AssignDocumentsToLevel(tree, ds.corpus, ds.entity_docs, 1);
  EXPECT_GT(eval::NormalizedMutualInformation(assignment, ds.doc_area), 0.8);
}

}  // namespace
}  // namespace latent
