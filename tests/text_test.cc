// Unit tests for the text substrate (tokenizer, Porter stemmer, corpus).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/corpus.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace latent::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  auto tokens = Tokenize("Query Processing, in DBMS!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "query");
  EXPECT_EQ(tokens[1], "processing");
  EXPECT_EQ(tokens[2], "in");
  EXPECT_EQ(tokens[3], "dbms");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ---").empty());
}

TEST(TokenizerTest, KeepsDigits) {
  auto tokens = Tokenize("top-10 lists");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1], "10");
}

TEST(StopwordTest, CommonFunctionWords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("database"));
  EXPECT_FALSE(IsStopword("mining"));
}

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

// Classic examples from Porter (1980) and the reference implementation's
// vocabulary list.
INSTANTIATE_TEST_SUITE_P(
    Vocabulary, PorterStemTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"motoring", "motor"}, StemCase{"sing", "sing"},
        StemCase{"conflated", "conflat"}, StemCase{"troubled", "troubl"},
        StemCase{"sized", "size"}, StemCase{"hopping", "hop"},
        StemCase{"tanned", "tan"}, StemCase{"falling", "fall"},
        StemCase{"hissing", "hiss"}, StemCase{"fizzed", "fizz"},
        StemCase{"failing", "fail"}, StemCase{"filing", "file"},
        StemCase{"happy", "happi"}, StemCase{"sky", "sky"},
        StemCase{"relational", "relat"}, StemCase{"conditional", "condit"},
        StemCase{"rational", "ration"}, StemCase{"valenci", "valenc"},
        StemCase{"digitizer", "digit"}, StemCase{"operator", "oper"},
        StemCase{"feudalism", "feudal"}, StemCase{"decisiveness", "decis"},
        StemCase{"hopefulness", "hope"}, StemCase{"formaliti", "formal"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST_P(PorterStemTest, MatchesReference) {
  EXPECT_EQ(PorterStem(GetParam().input), GetParam().expected)
      << "input: " << GetParam().input;
}

TEST(PorterStemTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
}

TEST(TokenizeFilteredTest, RemovesStopwordsAndShortTokens) {
  TokenizeOptions opt;
  opt.remove_stopwords = true;
  opt.min_length = 2;
  auto tokens = TokenizeFiltered("the query processing of a database", opt);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "query");
  EXPECT_EQ(tokens[2], "database");
}

TEST(TokenizeFilteredTest, StemsWhenRequested) {
  TokenizeOptions opt;
  opt.stem = true;
  auto tokens = TokenizeFiltered("mining frequent patterns", opt);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "mine");
  EXPECT_EQ(tokens[1], "frequent");
  EXPECT_EQ(tokens[2], "pattern");
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  int a = v.Intern("query");
  int b = v.Intern("processing");
  EXPECT_EQ(v.Intern("query"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.Token(a), "query");
  EXPECT_EQ(v.Lookup("processing"), b);
  EXPECT_EQ(v.Lookup("missing"), -1);
}

TEST(CorpusTest, AddDocumentSegmentsOnPunctuation) {
  Corpus c;
  TokenizeOptions opt;
  opt.remove_stopwords = false;
  opt.min_length = 1;
  c.AddDocument("query processing, concurrency control", opt);
  ASSERT_EQ(c.num_docs(), 1);
  const Document& d = c.docs()[0];
  EXPECT_EQ(d.size(), 4);
  ASSERT_EQ(d.segment_starts.size(), 2u);
  EXPECT_EQ(d.segment_starts[0], 0);
  EXPECT_EQ(d.segment_starts[1], 2);
}

TEST(CorpusTest, FrequenciesAreConsistent) {
  Corpus c;
  c.AddTokenizedDocument({"a", "b", "a"});
  c.AddTokenizedDocument({"b", "c"});
  EXPECT_EQ(c.vocab_size(), 3);
  EXPECT_EQ(c.total_tokens(), 5);
  auto df = c.DocumentFrequencies();
  auto cf = c.CollectionFrequencies();
  int a = c.vocab().Lookup("a");
  int b = c.vocab().Lookup("b");
  int cc = c.vocab().Lookup("c");
  EXPECT_EQ(df[a], 1);
  EXPECT_EQ(df[b], 2);
  EXPECT_EQ(df[cc], 1);
  EXPECT_EQ(cf[a], 2);
  EXPECT_EQ(cf[b], 2);
  EXPECT_EQ(cf[cc], 1);
}

TEST(CorpusTest, AddDocumentIdsSingleSegment) {
  Corpus c;
  c.mutable_vocab().Intern("x");
  c.mutable_vocab().Intern("y");
  c.AddDocumentIds({0, 1, 0});
  EXPECT_EQ(c.docs()[0].size(), 3);
  EXPECT_EQ(c.docs()[0].segment_starts.size(), 1u);
}

}  // namespace
}  // namespace latent::text
