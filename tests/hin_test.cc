// Unit tests for the heterogeneous-network substrate.
#include <gtest/gtest.h>

#include "hin/collapse.h"
#include "hin/network.h"
#include "text/corpus.h"

namespace latent::hin {
namespace {

TEST(HeteroNetworkTest, AddLinkTypeIsIdempotentAndOrderless) {
  HeteroNetwork net({"term", "author"}, {10, 5});
  int a = net.AddLinkType(0, 1);
  int b = net.AddLinkType(1, 0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(net.num_link_types(), 1);
  EXPECT_EQ(net.FindLinkType(1, 0), a);
  EXPECT_EQ(net.FindLinkType(0, 0), -1);
}

TEST(HeteroNetworkTest, CoalesceMergesDuplicates) {
  HeteroNetwork net({"term"}, {4});
  int lt = net.AddLinkType(0, 0);
  net.AddLink(lt, 1, 2, 1.0);
  net.AddLink(lt, 2, 1, 2.0);  // same undirected pair
  net.AddLink(lt, 0, 3, 1.0);
  net.Coalesce();
  EXPECT_EQ(net.NumLinks(), 2);
  EXPECT_DOUBLE_EQ(net.TotalWeight(), 4.0);
  // Find the (1,2) link.
  bool found = false;
  for (const Link& l : net.link_type(lt).links) {
    if (l.i == 1 && l.j == 2) {
      EXPECT_DOUBLE_EQ(l.weight, 3.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(HeteroNetworkTest, WeightedDegrees) {
  HeteroNetwork net({"term", "author"}, {3, 2});
  int tt = net.AddLinkType(0, 0);
  int ta = net.AddLinkType(0, 1);
  net.AddLink(tt, 0, 1, 2.0);
  net.AddLink(ta, 0, 0, 1.0);
  net.Coalesce();
  auto deg_t = net.WeightedDegrees(0);
  EXPECT_DOUBLE_EQ(deg_t[0], 3.0);
  EXPECT_DOUBLE_EQ(deg_t[1], 2.0);
  EXPECT_DOUBLE_EQ(deg_t[2], 0.0);
  auto deg_a = net.WeightedDegrees(1);
  EXPECT_DOUBLE_EQ(deg_a[0], 1.0);
  EXPECT_DOUBLE_EQ(deg_a[1], 0.0);
}

text::Corpus TwoDocCorpus() {
  text::Corpus c;
  c.AddTokenizedDocument({"query", "processing", "query"});
  c.AddTokenizedDocument({"query", "optimization"});
  return c;
}

TEST(CollapseTest, TermCooccurrenceCountsDocsOnce) {
  text::Corpus c = TwoDocCorpus();
  HeteroNetwork net = BuildTermCooccurrenceNetwork(c);
  EXPECT_EQ(net.num_types(), 1);
  // Doc 1 contributes (query, processing); doc 2 (query, optimization).
  EXPECT_EQ(net.NumLinks(), 2);
  EXPECT_DOUBLE_EQ(net.TotalWeight(), 2.0);
}

TEST(CollapseTest, EntityLinksConnectToAllDocWords) {
  text::Corpus c = TwoDocCorpus();
  std::vector<EntityDoc> entity_docs(2);
  entity_docs[0].entities = {{0}, {1}};  // author 0, venue 1
  entity_docs[1].entities = {{0, 1}, {0}};
  HeteroNetwork net =
      BuildCollapsedNetwork(c, {"author", "venue"}, {2, 2}, entity_docs);
  EXPECT_EQ(net.num_types(), 3);
  // term-term, term-author, term-venue, author-author, author-venue,
  // venue-venue = 6 registered link types.
  EXPECT_EQ(net.num_link_types(), 6);

  int ta = net.FindLinkType(0, 1);
  ASSERT_GE(ta, 0);
  // author 0 occurs in both docs: links to query(x2 docs -> weight 2),
  // processing(1), optimization(1); author 1 in doc 2 only.
  double author_term_total = net.link_type(ta).TotalWeight();
  EXPECT_DOUBLE_EQ(author_term_total, 2 + 1 + 1 + 2);

  int aa = net.FindLinkType(1, 1);
  ASSERT_GE(aa, 0);
  EXPECT_DOUBLE_EQ(net.link_type(aa).TotalWeight(), 1.0);  // doc 2 pair

  int av = net.FindLinkType(1, 2);
  ASSERT_GE(av, 0);
  // doc1: author0-venue1; doc2: author0-venue0, author1-venue0.
  EXPECT_DOUBLE_EQ(net.link_type(av).TotalWeight(), 3.0);
}

TEST(CollapseTest, OptionsDisableLinkFamilies) {
  text::Corpus c = TwoDocCorpus();
  std::vector<EntityDoc> entity_docs(2);
  entity_docs[0].entities = {{0}};
  entity_docs[1].entities = {{1}};
  CollapseOptions opt;
  opt.term_term = false;
  opt.entity_entity = false;
  HeteroNetwork net =
      BuildCollapsedNetwork(c, {"author"}, {2}, entity_docs, opt);
  EXPECT_EQ(net.FindLinkType(0, 0), -1);
  EXPECT_EQ(net.FindLinkType(1, 1), -1);
  EXPECT_GE(net.FindLinkType(0, 1), 0);
}

}  // namespace
}  // namespace latent::hin
