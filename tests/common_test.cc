// Unit tests for the numerics substrate (src/common).
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/dense.h"
#include "common/eigen.h"
#include "common/math_util.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/top_k.h"

namespace latent {
namespace {

TEST(MathUtilTest, SafeLogFloorsAtTinyProb) {
  EXPECT_DOUBLE_EQ(SafeLog(0.0), std::log(kTinyProb));
  EXPECT_DOUBLE_EQ(SafeLog(0.5), std::log(0.5));
}

TEST(MathUtilTest, LogSumExpMatchesDirectComputation) {
  std::vector<double> v = {0.1, 1.5, -2.0};
  double direct = std::log(std::exp(0.1) + std::exp(1.5) + std::exp(-2.0));
  EXPECT_NEAR(LogSumExp(v), direct, 1e-12);
}

TEST(MathUtilTest, LogSumExpHandlesLargeMagnitudes) {
  std::vector<double> v = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(v), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtilTest, NormalizeInPlaceMakesDistribution) {
  std::vector<double> v = {1.0, 3.0};
  double total = NormalizeInPlace(&v);
  EXPECT_DOUBLE_EQ(total, 4.0);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
}

TEST(MathUtilTest, NormalizeZeroVectorBecomesUniform) {
  std::vector<double> v = {0.0, 0.0, 0.0, 0.0};
  NormalizeInPlace(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.25);
}

TEST(MathUtilTest, KlDivergenceIsZeroForIdenticalDistributions) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(MathUtilTest, KlDivergenceIsPositiveForDifferentDistributions) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.1, 0.9};
  EXPECT_GT(KlDivergence(p, q), 0.0);
}

TEST(MathUtilTest, PointwiseKlZeroWhenPZero) {
  EXPECT_DOUBLE_EQ(PointwiseKl(0.0, 0.5), 0.0);
}

TEST(MathUtilTest, EntropyOfUniformIsLogK) {
  std::vector<double> p(8, 1.0 / 8.0);
  EXPECT_NEAR(Entropy(p), std::log(8.0), 1e-12);
}

TEST(MathUtilTest, TotalVariationBounds) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(TotalVariation(p, q), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariation(p, p), 0.0);
}

TEST(MathUtilTest, MatchedL1ErrorZeroForPermutedTopics) {
  std::vector<std::vector<double>> truth = {{0.9, 0.1}, {0.1, 0.9}};
  std::vector<std::vector<double>> est = {{0.1, 0.9}, {0.9, 0.1}};
  EXPECT_NEAR(MatchedL1Error(truth, est), 0.0, 1e-12);
}

TEST(MathUtilTest, CosineSimilarityOfOrthogonalVectorsIsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1.0, 0.0}, {0.0, 2.0}), 0.0);
  EXPECT_NEAR(CosineSimilarity({1.0, 1.0}, {2.0, 2.0}), 1.0, 1e-12);
}

TEST(RngTest, SameSeedSameSequence) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Uniform() != b.Uniform());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {0.0, 10.0, 0.0};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Discrete(w), 1);
}

TEST(RngTest, DiscreteEmpiricalFrequencies) {
  Rng rng(17);
  std::vector<double> w = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count1 += rng.Discrete(w);
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(23);
  std::vector<double> d = rng.Dirichlet(0.5, 10);
  double s = 0;
  for (double x : d) {
    EXPECT_GE(x, 0.0);
    s += x;
  }
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(5);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
  }
}

TEST(TopKTest, SelectsHighestScores) {
  std::vector<double> scores = {0.1, 0.9, 0.5, 0.7};
  auto top = TopKDense(scores, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1);
  EXPECT_EQ(top[1].first, 3);
}

TEST(TopKTest, TiesBrokenByIdAscending) {
  std::vector<double> scores = {0.5, 0.5, 0.5};
  auto top = TopKDense(scores, 2);
  EXPECT_EQ(top[0].first, 0);
  EXPECT_EQ(top[1].first, 1);
}

TEST(TopKTest, KLargerThanInputReturnsAllSorted) {
  std::vector<double> scores = {0.2, 0.8};
  auto top = TopKDense(scores, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1);
}

TEST(DenseTest, TransposeTimesAndTimesVector) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Matrix ata = a.TransposeTimes(a);
  EXPECT_EQ(ata.rows(), 3);
  EXPECT_EQ(ata.cols(), 3);
  EXPECT_DOUBLE_EQ(ata(0, 0), 17.0);  // 1*1 + 4*4
  EXPECT_DOUBLE_EQ(ata(0, 1), 22.0);  // 1*2 + 4*5

  std::vector<double> y = a.TimesVector({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);

  std::vector<double> z = a.TransposeTimesVector({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(DenseTest, OrthonormalizeProducesOrthonormalColumns) {
  Rng rng(31);
  Matrix m(10, 4);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 4; ++j) m(i, j) = rng.Normal();
  }
  OrthonormalizeColumns(&m);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      double dot = 0;
      for (int i = 0; i < 10; ++i) dot += m(i, a) * m(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(EigenTest, JacobiDiagonalizesKnownMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  EigenResult r = JacobiEigenSymmetric(a);
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(r.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(EigenTest, JacobiReconstructsMatrix) {
  Rng rng(37);
  const int n = 8;
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      a(i, j) = a(j, i) = rng.Normal();
    }
  }
  EigenResult r = JacobiEigenSymmetric(a);
  // Reconstruct A = V diag(w) V^T.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0;
      for (int t = 0; t < n; ++t) {
        s += r.vectors(i, t) * r.values[t] * r.vectors(j, t);
      }
      EXPECT_NEAR(s, a(i, j), 1e-8);
    }
  }
}

TEST(EigenTest, RandomizedMatchesJacobiOnLowRankOperator) {
  // A = B B^T with B 30x3 => rank 3 PSD.
  Rng rng(41);
  const int n = 30, k = 3;
  Matrix b(n, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) b(i, j) = rng.Normal();
  }
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0;
      for (int t = 0; t < k; ++t) s += b(i, t) * b(j, t);
      a(i, j) = s;
    }
  }
  EigenResult exact = JacobiEigenSymmetric(a);
  auto matvec = [&](const std::vector<double>& x, std::vector<double>* y) {
    *y = a.TimesVector(x);
  };
  EigenResult approx = RandomizedEigenSymmetric(matvec, n, k, /*seed=*/5);
  for (int j = 0; j < k; ++j) {
    EXPECT_NEAR(approx.values[j], exact.values[j], 1e-6 * (1 + exact.values[j]));
  }
}

// ---------------------------------------------------------------------------
// I/O retry policy.
// ---------------------------------------------------------------------------

io::RetryPolicy FastPolicy() {
  io::RetryPolicy p;
  p.max_attempts = 4;
  p.initial_backoff_ms = 0;  // tests never actually want to sleep
  p.max_backoff_ms = 0;
  return p;
}

TEST(RetryTest, OnlyInternalIsTransient) {
  EXPECT_TRUE(io::IsTransient(Status::Internal("flaky disk")));
  EXPECT_FALSE(io::IsTransient(Status::Ok()));
  EXPECT_FALSE(io::IsTransient(Status::InvalidArgument("bad")));
  EXPECT_FALSE(io::IsTransient(Status::NotFound("gone")));
  EXPECT_FALSE(io::IsTransient(Status::Cancelled("stop")));
  EXPECT_FALSE(io::IsTransient(Status::ResourceExhausted("budget")));
  EXPECT_FALSE(io::IsTransient(Status::DeadlineExceeded("late")));
}

TEST(RetryTest, TransientFailureRecoversWithinAttemptBudget) {
  int calls = 0;
  Status s = io::WithRetry(FastPolicy(), [&]() -> Status {
    return ++calls < 3 ? Status::Internal("transient") : Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, PermanentFailureIsNotRetried) {
  int calls = 0;
  Status s = io::WithRetry(FastPolicy(), [&]() -> Status {
    ++calls;
    return Status::InvalidArgument("never retry this");
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, AttemptBudgetBoundsTheCallsAndReturnsLastStatus) {
  int calls = 0;
  Status s = io::WithRetry(FastPolicy(), [&]() -> Status {
    return Status::Internal("still failing #" + std::to_string(++calls));
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 4);
  EXPECT_NE(s.message().find("#4"), std::string::npos);
}

TEST(RetryTest, StoppedRunContextWinsOverTheIoFailure) {
  run::RunContext ctx;
  ctx.set_work_budget(1);
  ctx.ChargeWork(5);  // exhausted before the retry loop starts
  int calls = 0;
  Status s = io::WithRetry(
      FastPolicy(),
      [&]() -> Status {
        ++calls;
        return Status::Internal("transient");
      },
      &ctx);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 0);  // never even attempted
}

TEST(RetryTest, BackoffGrowsExponentiallyAndCaps) {
  io::RetryPolicy p;
  p.initial_backoff_ms = 10;
  p.max_backoff_ms = 50;
  p.multiplier = 2.0;
  p.jitter = 0.0;  // exact schedule
  EXPECT_EQ(io::BackoffMs(p, 0, nullptr), 10);
  EXPECT_EQ(io::BackoffMs(p, 1, nullptr), 20);
  EXPECT_EQ(io::BackoffMs(p, 2, nullptr), 40);
  EXPECT_EQ(io::BackoffMs(p, 3, nullptr), 50);  // capped
  EXPECT_EQ(io::BackoffMs(p, 9, nullptr), 50);
}

TEST(RetryTest, JitterIsDeterministicPerSeedAndBounded) {
  io::RetryPolicy p;
  p.initial_backoff_ms = 100;
  p.max_backoff_ms = 1000;
  p.jitter = 0.5;
  Rng a(p.seed), b(p.seed), c(p.seed + 1);
  bool any_diff = false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const long long da = io::BackoffMs(p, attempt, &a);
    const long long db = io::BackoffMs(p, attempt, &b);
    const long long dc = io::BackoffMs(p, attempt, &c);
    EXPECT_EQ(da, db);  // same seed, same schedule
    any_diff = any_diff || da != dc;
    // Jittered delay stays within [0.5, 1.5] x the un-jittered base.
    const long long base = io::BackoffMs(p, attempt, nullptr);
    EXPECT_GE(da, base / 2);
    EXPECT_LE(da, base + base / 2);
  }
  EXPECT_TRUE(any_diff);  // a different seed gives a different schedule
}

TEST(RetryTest, BackoffSequenceReplaysTheRawScheduleExactly) {
  io::RetryPolicy p;
  p.initial_backoff_ms = 100;
  p.max_backoff_ms = 1000;
  p.jitter = 0.5;
  // BackoffSequence is the shared backoff iterator (WithRetry and
  // ResilientClient both drive it): walking it must reproduce BackoffMs
  // with a fresh policy-seeded Rng, delay for delay.
  io::BackoffSequence seq(p);
  Rng reference(p.seed);
  for (int attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(seq.attempt(), attempt);
    EXPECT_EQ(seq.NextMs(), io::BackoffMs(p, attempt, &reference));
  }
  // Two sequences over the same policy replay the same delays — the
  // determinism pin the chaos suite's backoff-trace comparison relies on.
  io::BackoffSequence a(p), b(p);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.NextMs(), b.NextMs());
}

}  // namespace
}  // namespace latent
