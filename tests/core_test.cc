// Tests for the CATHY/CATHYHIN clustering model, the topic hierarchy, and
// the recursive builder.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/builder.h"
#include "core/clusterer.h"
#include "core/hierarchy.h"
#include "hin/network.h"

namespace latent::core {
namespace {

// Two planted term communities {0..4} and {5..9}, dense inside, one weak
// cross link.
hin::HeteroNetwork TwoBlockNetwork(double intra = 10.0, double cross = 1.0) {
  hin::HeteroNetwork net({"term"}, {10});
  int lt = net.AddLinkType(0, 0);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      net.AddLink(lt, i, j, intra);
      net.AddLink(lt, i + 5, j + 5, intra);
    }
  }
  net.AddLink(lt, 0, 5, cross);
  net.Coalesce();
  return net;
}

// Index of the topic that maximizes phi for node i of type x.
int ArgmaxTopic(const ClusterResult& r, int x, int i) {
  int best = 0;
  for (int z = 1; z < r.k; ++z) {
    if (r.phi[z][x][i] > r.phi[best][x][i]) best = z;
  }
  return best;
}

ClusterOptions HomogeneousOptions() {
  ClusterOptions opt;
  opt.num_topics = 2;
  opt.background = false;
  opt.restarts = 5;
  opt.seed = 11;
  return opt;
}

TEST(ClustererTest, RecoversPlantedBlocks) {
  hin::HeteroNetwork net = TwoBlockNetwork();
  auto parent = DegreeDistributions(net);
  ClusterResult r = FitCluster(net, parent, HomogeneousOptions());
  ASSERT_EQ(r.k, 2);
  int block_a = ArgmaxTopic(r, 0, 0);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(ArgmaxTopic(r, 0, i), block_a);
  for (int i = 5; i < 10; ++i) EXPECT_NE(ArgmaxTopic(r, 0, i), block_a);
}

TEST(ClustererTest, RhoIsADistribution) {
  hin::HeteroNetwork net = TwoBlockNetwork();
  auto parent = DegreeDistributions(net);
  ClusterResult r = FitCluster(net, parent, HomogeneousOptions());
  double total = Sum(r.rho) + r.rho_bg;
  EXPECT_NEAR(total, 1.0, 1e-8);
  // Blocks are symmetric, so the split should be roughly even.
  EXPECT_NEAR(r.rho[0], 0.5, 0.05);
}

TEST(ClustererTest, PhiRowsAreDistributions) {
  hin::HeteroNetwork net = TwoBlockNetwork();
  auto parent = DegreeDistributions(net);
  ClusterResult r = FitCluster(net, parent, HomogeneousOptions());
  for (int z = 0; z < r.k; ++z) {
    EXPECT_NEAR(Sum(r.phi[z][0]), 1.0, 1e-8);
    for (double v : r.phi[z][0]) EXPECT_GE(v, 0.0);
  }
}

TEST(ClustererTest, DeterministicGivenSeed) {
  hin::HeteroNetwork net = TwoBlockNetwork();
  auto parent = DegreeDistributions(net);
  ClusterResult a = FitCluster(net, parent, HomogeneousOptions());
  ClusterResult b = FitCluster(net, parent, HomogeneousOptions());
  EXPECT_DOUBLE_EQ(a.log_likelihood, b.log_likelihood);
  EXPECT_EQ(a.phi[0][0], b.phi[0][0]);
}

TEST(ClustererTest, ExtractSubnetworkSeparatesBlocks) {
  hin::HeteroNetwork net = TwoBlockNetwork();
  auto parent = DegreeDistributions(net);
  ClusterResult r = FitCluster(net, parent, HomogeneousOptions());
  int block_of_0 = ArgmaxTopic(r, 0, 0);
  hin::HeteroNetwork sub = ExtractSubnetwork(net, r, block_of_0, 1.0);
  // Subnetwork should contain block-0 internal links only.
  auto deg = sub.WeightedDegrees(0);
  for (int i = 0; i < 5; ++i) EXPECT_GT(deg[i], 0.0);
  for (int i = 6; i < 10; ++i) EXPECT_DOUBLE_EQ(deg[i], 0.0) << i;
  // Extracted weight cannot exceed the original.
  EXPECT_LE(sub.TotalWeight(), net.TotalWeight());
}

TEST(ClustererTest, SubnetworkWeightsPartitionOriginal) {
  hin::HeteroNetwork net = TwoBlockNetwork();
  auto parent = DegreeDistributions(net);
  ClusterResult r = FitCluster(net, parent, HomogeneousOptions());
  // With min_weight=0 the subtopic expected weights must sum back to the
  // original link weights (no background here).
  double total = 0.0;
  for (int z = 0; z < r.k; ++z) {
    total += ExtractSubnetwork(net, r, z, 0.0).TotalWeight();
  }
  EXPECT_NEAR(total, net.TotalWeight(), 1e-6);
}

TEST(ClustererTest, SelectAndFitPrefersTwoBlocks) {
  hin::HeteroNetwork net = TwoBlockNetwork(20.0, 0.5);
  auto parent = DegreeDistributions(net);
  ClusterOptions opt = HomogeneousOptions();
  ClusterResult r = SelectAndFit(net, parent, opt, 1, 4);
  EXPECT_EQ(r.k, 2);
}

TEST(ClustererTest, LikelihoodImprovesWithCorrectK) {
  hin::HeteroNetwork net = TwoBlockNetwork();
  auto parent = DegreeDistributions(net);
  ClusterOptions opt = HomogeneousOptions();
  opt.num_topics = 1;
  ClusterResult k1 = FitCluster(net, parent, opt);
  opt.num_topics = 2;
  ClusterResult k2 = FitCluster(net, parent, opt);
  EXPECT_GT(k2.log_likelihood, k1.log_likelihood);
}

// Heterogeneous planted network: terms + authors, two communities.
hin::HeteroNetwork TwoBlockHin() {
  hin::HeteroNetwork net({"term", "author"}, {10, 6});
  int tt = net.AddLinkType(0, 0);
  int ta = net.AddLinkType(0, 1);
  int aa = net.AddLinkType(1, 1);
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      net.AddLink(tt, i, j, 8.0);
      net.AddLink(tt, i + 5, j + 5, 8.0);
    }
  }
  for (int a = 0; a < 3; ++a) {
    for (int w = 0; w < 5; ++w) {
      net.AddLink(ta, w, a, 4.0);
      net.AddLink(ta, w + 5, a + 3, 4.0);
    }
  }
  net.AddLink(aa, 0, 1, 6.0);
  net.AddLink(aa, 1, 2, 6.0);
  net.AddLink(aa, 3, 4, 6.0);
  net.AddLink(aa, 4, 5, 6.0);
  net.AddLink(aa, 0, 3, 0.5);  // weak cross community link
  net.Coalesce();
  return net;
}

TEST(ClustererTest, HeterogeneousWithBackgroundRecoversCommunities) {
  hin::HeteroNetwork net = TwoBlockHin();
  auto parent = DegreeDistributions(net);
  ClusterOptions opt;
  opt.num_topics = 2;
  opt.background = true;
  opt.restarts = 5;
  opt.seed = 3;
  ClusterResult r = FitCluster(net, parent, opt);
  EXPECT_GE(r.rho_bg, 0.0);
  EXPECT_LE(r.rho_bg, 0.6);
  int block_a_term = ArgmaxTopic(r, 0, 0);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(ArgmaxTopic(r, 0, i), block_a_term);
  for (int i = 5; i < 10; ++i) EXPECT_NE(ArgmaxTopic(r, 0, i), block_a_term);
  // Authors should follow their community's terms.
  int block_a_author = ArgmaxTopic(r, 1, 0);
  EXPECT_EQ(block_a_author, block_a_term);
  for (int a = 3; a < 6; ++a) EXPECT_NE(ArgmaxTopic(r, 1, a), block_a_term);
}

class WeightModeTest : public ::testing::TestWithParam<LinkWeightMode> {};

INSTANTIATE_TEST_SUITE_P(AllModes, WeightModeTest,
                         ::testing::Values(LinkWeightMode::kEqual,
                                           LinkWeightMode::kNormalized,
                                           LinkWeightMode::kLearned));

TEST_P(WeightModeTest, FitSucceedsAndNormalizes) {
  hin::HeteroNetwork net = TwoBlockHin();
  auto parent = DegreeDistributions(net);
  ClusterOptions opt;
  opt.num_topics = 2;
  opt.background = true;
  opt.weight_mode = GetParam();
  opt.restarts = 3;
  opt.seed = 19;
  ClusterResult r = FitCluster(net, parent, opt);
  EXPECT_NEAR(Sum(r.rho) + r.rho_bg, 1.0, 1e-6);
  for (double a : r.alpha) EXPECT_GT(a, 0.0);
  for (int z = 0; z < r.k; ++z) {
    for (int x = 0; x < net.num_types(); ++x) {
      double s = Sum(r.phi[z][x]);
      EXPECT_TRUE(std::abs(s - 1.0) < 1e-6 || s == 0.0);
    }
  }
}

TEST(ClustererTest, LearnedAlphaGeometricMeanIsOne) {
  hin::HeteroNetwork net = TwoBlockHin();
  auto parent = DegreeDistributions(net);
  ClusterOptions opt;
  opt.num_topics = 2;
  opt.background = true;
  opt.weight_mode = LinkWeightMode::kLearned;
  opt.restarts = 1;
  opt.seed = 19;
  ClusterResult r = FitCluster(net, parent, opt);
  // The constraint prod alpha^{n_xy} = 1 (Eq. 3.34).
  double log_sum = 0.0, n = 0.0;
  for (int lt = 0; lt < net.num_link_types(); ++lt) {
    double nl = static_cast<double>(net.link_type(lt).links.size());
    log_sum += nl * std::log(r.alpha[lt]);
    n += nl;
  }
  EXPECT_NEAR(log_sum / n, 0.0, 1e-8);
}

TEST(HierarchyTest, PathsAndLevels) {
  TopicHierarchy tree({"term"}, {4});
  tree.AddRoot({{0.25, 0.25, 0.25, 0.25}}, 100.0);
  int c1 = tree.AddChild(0, 0.6, {{0.5, 0.5, 0.0, 0.0}}, 60.0);
  int c2 = tree.AddChild(0, 0.4, {{0.0, 0.0, 0.5, 0.5}}, 40.0);
  int g1 = tree.AddChild(c1, 1.0, {{1.0, 0.0, 0.0, 0.0}}, 30.0);
  EXPECT_EQ(tree.node(0).path, "o");
  EXPECT_EQ(tree.node(c1).path, "o/1");
  EXPECT_EQ(tree.node(c2).path, "o/2");
  EXPECT_EQ(tree.node(g1).path, "o/1/1");
  EXPECT_EQ(tree.node(g1).level, 2);
  EXPECT_EQ(tree.Height(), 2);
  auto leaves = tree.Leaves();
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_EQ(leaves[0], c2);
  EXPECT_EQ(leaves[1], g1);
  auto rho = tree.ChildRho(0);
  EXPECT_NEAR(rho[0], 0.6, 1e-12);
  EXPECT_NEAR(rho[1], 0.4, 1e-12);
}

TEST(BuilderTest, BuildsRequestedShape) {
  hin::HeteroNetwork net = TwoBlockNetwork(30.0, 1.0);
  BuildOptions opt;
  opt.levels_k = {2};
  opt.max_depth = 1;
  opt.cluster.background = false;
  opt.cluster.restarts = 3;
  opt.cluster.seed = 7;
  opt.min_network_weight = 1.0;
  TopicHierarchy tree = BuildHierarchy(net, opt);
  EXPECT_EQ(tree.num_nodes(), 3);
  EXPECT_EQ(tree.node(tree.root()).children.size(), 2u);
  // Children rho normalized.
  auto rho = tree.ChildRho(tree.root());
  EXPECT_NEAR(rho[0] + rho[1], 1.0, 1e-9);
}

TEST(BuilderTest, RecursionStopsAtMaxDepth) {
  hin::HeteroNetwork net = TwoBlockNetwork(30.0, 1.0);
  BuildOptions opt;
  opt.levels_k = {2, 2};
  opt.max_depth = 2;
  opt.cluster.background = false;
  opt.cluster.restarts = 2;
  opt.cluster.seed = 7;
  opt.min_network_weight = 1.0;
  TopicHierarchy tree = BuildHierarchy(net, opt);
  EXPECT_EQ(tree.Height(), 2);
  for (int id = 0; id < tree.num_nodes(); ++id) {
    EXPECT_LE(tree.node(id).level, 2);
  }
}

TEST(BuilderTest, SmallNetworksAreNotSplit) {
  hin::HeteroNetwork net = TwoBlockNetwork(1.0, 0.1);
  BuildOptions opt;
  opt.levels_k = {2};
  opt.max_depth = 1;
  opt.min_network_weight = 1e6;  // absurdly high: nothing splits
  TopicHierarchy tree = BuildHierarchy(net, opt);
  EXPECT_EQ(tree.num_nodes(), 1);
}

}  // namespace
}  // namespace latent::core
