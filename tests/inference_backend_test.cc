// Inference-backend seam (DESIGN §11): EM vs spectral structural sanity on
// the bundled example corpus, the kAuto per-node switchover, spectral
// checkpoint/resume byte-identity under a work budget, fingerprint
// invalidation when the backend changes, option validation, and the
// spectral divergence -> seed-bumped-retry -> kInternal protocol.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/latent.h"
#include "common/failpoint.h"
#include "common/math_util.h"
#include "core/serialize.h"
#include "data/io.h"
#include "data/synthetic_hin.h"

#ifndef LATENT_EXAMPLES_DATA
#error "LATENT_EXAMPLES_DATA must point at the bundled examples/data dir"
#endif

namespace latent {
namespace {

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::system(("rm -rf " + dir).c_str());
  return dir;
}

std::string TreeBytes(const api::MinedHierarchy& mined) {
  return core::SerializeHierarchy(mined.tree());
}

data::HinDataset SmallDs() {
  data::HinDatasetOptions opt = data::DblpLikeOptions(800, 55);
  opt.num_areas = 3;
  opt.subareas_per_area = 2;
  return data::GenerateHinDataset(opt);
}

api::PipelineInput MakeInput(const data::HinDataset& ds) {
  return api::PipelineInput(
      ds.corpus, api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
}

api::PipelineOptions BaseOptions(core::InferenceBackendKind backend) {
  api::PipelineOptions opt;
  opt.build.levels_k = {3, 2};
  opt.build.max_depth = 2;
  opt.build.cluster.restarts = 2;
  opt.build.cluster.max_iters = 50;
  opt.build.cluster.seed = 7;
  opt.miner.min_support = 4;
  opt.exec.num_threads = 1;
  opt.inference.backend = backend;
  opt.inference.spectral.min_docs = 4;
  return opt;
}

// Every node of a mined tree must carry normalized distributions no matter
// which backend fitted it.
void ExpectStructurallySane(const core::TopicHierarchy& tree) {
  ASSERT_GE(tree.num_nodes(), 1);
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const core::TopicNode& node = tree.node(id);
    ASSERT_FALSE(node.phi.empty()) << "node " << id;
    EXPECT_NEAR(Sum(node.phi[0]), 1.0, 1e-6) << "node " << id;
    for (double v : node.phi[0]) EXPECT_GE(v, 0.0) << "node " << id;
    if (id != tree.root()) {
      EXPECT_GE(node.rho_in_parent, 0.0) << "node " << id;
    }
  }
}

// ---------------------------------------------------------------------------
// EM vs spectral on the bundled example corpus.
// ---------------------------------------------------------------------------

class ExampleCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string dir = LATENT_EXAMPLES_DATA;
    auto corpus = data::LoadCorpusFromFile(dir + "/papers.txt", {});
    ASSERT_TRUE(corpus.ok()) << corpus.status().message();
    corpus_ = std::move(corpus.value());
    auto attachments = data::LoadEntityAttachments(
        dir + "/papers_entities.tsv", corpus_.num_docs());
    ASSERT_TRUE(attachments.ok()) << attachments.status().message();
    attachments_ = std::move(attachments.value());
  }

  api::PipelineInput Input() {
    return api::PipelineInput(
        corpus_,
        api::EntitySchema(attachments_.type_names, attachments_.TypeSizes()),
        attachments_.entity_docs);
  }

  static api::PipelineOptions ExampleOptions(
      core::InferenceBackendKind backend) {
    api::PipelineOptions opt = BaseOptions(backend);
    opt.build.levels_k = {3};
    opt.build.max_depth = 1;
    opt.miner.min_support = 3;
    return opt;
  }

  text::Corpus corpus_;
  data::EntityAttachments attachments_;
};

TEST_F(ExampleCorpusTest, EmAndSpectralBothMineValidHierarchies) {
  StatusOr<api::MinedHierarchy> em =
      api::Mine(Input(), ExampleOptions(core::InferenceBackendKind::kEm));
  ASSERT_TRUE(em.ok()) << em.status().message();
  StatusOr<api::MinedHierarchy> spectral = api::Mine(
      Input(), ExampleOptions(core::InferenceBackendKind::kSpectral));
  ASSERT_TRUE(spectral.ok()) << spectral.status().message();

  // Same requested shape, independently sane distributions.
  EXPECT_EQ(em.value().tree().node(em.value().tree().root()).children.size(),
            3u);
  EXPECT_EQ(spectral.value()
                .tree()
                .node(spectral.value().tree().root())
                .children.size(),
            3u);
  ExpectStructurallySane(em.value().tree());
  ExpectStructurallySane(spectral.value().tree());
  // Different inference machinery must actually produce different numbers.
  EXPECT_NE(TreeBytes(em.value()), TreeBytes(spectral.value()));
}

TEST_F(ExampleCorpusTest, SpectralRunIsRepeatable) {
  const api::PipelineOptions opt =
      ExampleOptions(core::InferenceBackendKind::kSpectral);
  StatusOr<api::MinedHierarchy> a = api::Mine(Input(), opt);
  StatusOr<api::MinedHierarchy> b = api::Mine(Input(), opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(TreeBytes(a.value()), TreeBytes(b.value()));
}

// ---------------------------------------------------------------------------
// kAuto switchover.
// ---------------------------------------------------------------------------

TEST(AutoBackendTest, HighThresholdDegeneratesToPureEm) {
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);
  StatusOr<api::MinedHierarchy> em =
      api::Mine(input, BaseOptions(core::InferenceBackendKind::kEm));
  ASSERT_TRUE(em.ok()) << em.status().message();

  api::PipelineOptions opt = BaseOptions(core::InferenceBackendKind::kAuto);
  opt.inference.auto_min_docs = 1 << 30;  // no node can reach it
  StatusOr<api::MinedHierarchy> auto_run = api::Mine(input, opt);
  ASSERT_TRUE(auto_run.ok()) << auto_run.status().message();
  EXPECT_EQ(TreeBytes(auto_run.value()), TreeBytes(em.value()));
}

TEST(AutoBackendTest, LowThresholdDegeneratesToPureSpectral) {
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);
  StatusOr<api::MinedHierarchy> spectral =
      api::Mine(input, BaseOptions(core::InferenceBackendKind::kSpectral));
  ASSERT_TRUE(spectral.ok()) << spectral.status().message();

  api::PipelineOptions opt = BaseOptions(core::InferenceBackendKind::kAuto);
  opt.inference.auto_min_docs = 1;  // every evidence-bearing node qualifies
  StatusOr<api::MinedHierarchy> auto_run = api::Mine(input, opt);
  ASSERT_TRUE(auto_run.ok()) << auto_run.status().message();
  EXPECT_EQ(TreeBytes(auto_run.value()), TreeBytes(spectral.value()));
}

TEST(AutoBackendTest, MidThresholdMixesBackendsInOneTree) {
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);
  api::PipelineOptions opt = BaseOptions(core::InferenceBackendKind::kAuto);
  // Root (800 docs) goes spectral; its ~3-way split children drop below
  // the threshold and fall back to EM.
  opt.inference.auto_min_docs = 400;
  obs::Registry metrics;
  opt.metrics = &metrics;
  StatusOr<api::MinedHierarchy> mixed = api::Mine(input, opt);
  ASSERT_TRUE(mixed.ok()) << mixed.status().message();
  ExpectStructurallySane(mixed.value().tree());
#if defined(LATENT_OBS_ENABLED)
  EXPECT_EQ(metrics.CounterValue("infer.spectral.fits"), 1u);
  EXPECT_GT(metrics.CounterValue("infer.em.fits"), 0u);
  EXPECT_GT(metrics.CounterValue("infer.spectral.iterations"), 0u);
#endif
}

// ---------------------------------------------------------------------------
// Checkpoint/resume for spectral builds.
// ---------------------------------------------------------------------------

class SpectralResumeTest : public ::testing::TestWithParam<long long> {};

TEST_P(SpectralResumeTest, BudgetInterruptedSpectralRunResumesBitIdentical) {
  const long long budget = GetParam();
  const std::string dir =
      TempDirFor("infer_resume_b" + std::to_string(budget));
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);

  // Reference: one uninterrupted, un-checkpointed spectral run.
  StatusOr<api::MinedHierarchy> ref =
      api::Mine(input, BaseOptions(core::InferenceBackendKind::kSpectral));
  ASSERT_TRUE(ref.ok()) << ref.status().message();
  const std::string want = TreeBytes(ref.value());

  // Interrupted run: the work budget charges tensor power trials, so a
  // small budget stops the build mid-tree wherever it lands.
  api::PipelineOptions stopped =
      BaseOptions(core::InferenceBackendKind::kSpectral);
  stopped.checkpoint_dir = dir;
  stopped.checkpoint_every_nodes = 1;
  stopped.work_budget = budget;
  StatusOr<api::MinedHierarchy> partial = api::Mine(input, stopped);
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  EXPECT_TRUE(partial.value().partial());

  // Resume without the budget: must complete to the reference tree.
  api::PipelineOptions resumed =
      BaseOptions(core::InferenceBackendKind::kSpectral);
  resumed.checkpoint_dir = dir;
  resumed.checkpoint_every_nodes = 1;
  resumed.resume = true;
  StatusOr<api::MinedHierarchy> full = api::Mine(input, resumed);
  ASSERT_TRUE(full.ok()) << full.status().message();
  EXPECT_FALSE(full.value().partial());
  EXPECT_TRUE(full.value().checkpoint_warning().empty())
      << full.value().checkpoint_warning();
  EXPECT_EQ(TreeBytes(full.value()), want);
}

INSTANTIATE_TEST_SUITE_P(Budgets, SpectralResumeTest,
                         ::testing::Values(1, 8, 40));

TEST(BackendSwitchTest, SwitchingBackendsInvalidatesTheCheckpoint) {
  const std::string dir = TempDirFor("infer_backend_switch");
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);

  // Fill the directory with an EM run's fits.
  api::PipelineOptions em = BaseOptions(core::InferenceBackendKind::kEm);
  em.checkpoint_dir = dir;
  ASSERT_TRUE(api::Mine(input, em).ok());

  // Scratch spectral reference (no checkpointing involved).
  StatusOr<api::MinedHierarchy> scratch =
      api::Mine(input, BaseOptions(core::InferenceBackendKind::kSpectral));
  ASSERT_TRUE(scratch.ok()) << scratch.status().message();

  // Resuming with the spectral backend against the EM directory: the
  // options fingerprint covers the backend, so the snapshot is ignored
  // (clean restart + warning), never replayed into a wrong tree.
  api::PipelineOptions spectral =
      BaseOptions(core::InferenceBackendKind::kSpectral);
  spectral.checkpoint_dir = dir;
  spectral.resume = true;
  StatusOr<api::MinedHierarchy> resumed = api::Mine(input, spectral);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_NE(resumed.value().checkpoint_warning().find("fingerprint"),
            std::string::npos)
      << resumed.value().checkpoint_warning();
  EXPECT_EQ(TreeBytes(resumed.value()), TreeBytes(scratch.value()));
}

// ---------------------------------------------------------------------------
// Option validation (the PipelineOptions::Validate() "(got N)" contract).
// ---------------------------------------------------------------------------

TEST(InferenceOptionsTest, ValidateRejectsIllFormedKnobs) {
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);
  {
    api::PipelineOptions opt = BaseOptions(core::InferenceBackendKind::kAuto);
    opt.inference.auto_min_docs = 0;
    Status s = opt.Validate();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("auto_min_docs"), std::string::npos);
    EXPECT_NE(s.message().find("(got 0)"), std::string::npos) << s.message();
    EXPECT_EQ(api::Mine(input, opt).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    api::PipelineOptions opt =
        BaseOptions(core::InferenceBackendKind::kSpectral);
    opt.inference.spectral.alpha0 = 0.0;
    EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  }
  {
    api::PipelineOptions opt =
        BaseOptions(core::InferenceBackendKind::kSpectral);
    opt.inference.spectral.power_restarts = 0;
    Status s = opt.Validate();
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(s.message().find("power_restarts"), std::string::npos);
  }
  {
    api::PipelineOptions opt =
        BaseOptions(core::InferenceBackendKind::kSpectral);
    opt.inference.spectral.min_docs = 0;
    EXPECT_EQ(opt.Validate().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Divergence protocol: seed-bumped retries, then kInternal — no silent
// fallback to EM.
// ---------------------------------------------------------------------------

#if defined(LATENT_FAILPOINTS_ENABLED)
constexpr bool kFailpointsCompiledIn = true;
#else
constexpr bool kFailpointsCompiledIn = false;
#endif

class SpectralDivergenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFailpointsCompiledIn) {
      GTEST_SKIP() << "built with -DLATENT_FAILPOINTS=OFF";
    }
    run::failpoint::DisarmAll();
  }
  void TearDown() override { run::failpoint::DisarmAll(); }
};

TEST_F(SpectralDivergenceTest, OneDivergenceIsRetriedToSuccess) {
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);
  StatusOr<api::MinedHierarchy> ref =
      api::Mine(input, BaseOptions(core::InferenceBackendKind::kSpectral));
  ASSERT_TRUE(ref.ok()) << ref.status().message();

  run::failpoint::Arm("spectral.nan", /*count=*/1);
  api::PipelineOptions opt = BaseOptions(core::InferenceBackendKind::kSpectral);
  obs::Registry metrics;
  opt.metrics = &metrics;
  StatusOr<api::MinedHierarchy> retried = api::Mine(input, opt);
  ASSERT_TRUE(retried.ok()) << retried.status().message();
#if defined(LATENT_OBS_ENABLED)
  EXPECT_GE(metrics.CounterValue("infer.spectral.retries"), 1u);
#endif
  // The retried fit used a bumped seed, so its numbers legitimately differ
  // from the clean reference — but the tree is still structurally sound.
  ExpectStructurallySane(retried.value().tree());
}

TEST_F(SpectralDivergenceTest, ExhaustedRetriesFailTheRunWithInternal) {
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);
  run::failpoint::Arm("spectral.nan", /*count=*/-1);  // every attempt
  StatusOr<api::MinedHierarchy> result =
      api::Mine(input, BaseOptions(core::InferenceBackendKind::kSpectral));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("spectral"), std::string::npos)
      << result.status().message();
}

}  // namespace
}  // namespace latent
