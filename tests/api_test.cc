// Tests for the one-call convenience API (src/api).
#include <gtest/gtest.h>

#include "api/latent.h"
#include "data/synthetic_hin.h"

namespace latent::api {
namespace {

data::HinDataset SmallDs() {
  data::HinDatasetOptions opt = data::DblpLikeOptions(800, 55);
  opt.num_areas = 3;
  opt.subareas_per_area = 2;
  return data::GenerateHinDataset(opt);
}

PipelineOptions SmallOptions() {
  PipelineOptions opt;
  opt.build.levels_k = {3, 2};
  opt.build.max_depth = 2;
  opt.build.cluster.restarts = 2;
  opt.build.cluster.max_iters = 50;
  opt.build.cluster.seed = 7;
  opt.miner.min_support = 4;
  return opt;
}

TEST(ApiTest, MinesFullHierarchyWithEntities) {
  data::HinDataset ds = SmallDs();
  MinedHierarchy mined =
      MineTopicalHierarchy(ds.corpus, ds.entity_type_names,
                           ds.entity_type_sizes, ds.entity_docs,
                           SmallOptions());
  EXPECT_EQ(mined.tree().node(0).children.size(), 3u);
  EXPECT_EQ(mined.tree().Height(), 2);
  EXPECT_GT(mined.dict().size(), 0);

  phrase::KertOptions kopt;
  for (int node : mined.tree().NodesAtLevel(1)) {
    auto phrases = mined.TopPhrases(node, kopt, 5);
    EXPECT_FALSE(phrases.empty()) << node;
    auto authors = mined.TopEntities(node, 1, 5);
    EXPECT_FALSE(authors.empty()) << node;
  }
}

TEST(ApiTest, TextOnlyPipelineWorks) {
  data::HinDataset ds = SmallDs();
  MinedHierarchy mined =
      MineTopicalHierarchy(ds.corpus, {}, {}, {}, SmallOptions());
  EXPECT_EQ(mined.tree().num_types(), 1);
  phrase::KertOptions kopt;
  std::string tree = mined.RenderTree(kopt, 3);
  EXPECT_NE(tree.find("o/1"), std::string::npos);
  EXPECT_NE(tree.find("o/1/1"), std::string::npos);
}

TEST(ApiTest, RenderNodeHandlesRootAndLeaves) {
  data::HinDataset ds = SmallDs();
  MinedHierarchy mined =
      MineTopicalHierarchy(ds.corpus, {}, {}, {}, SmallOptions());
  phrase::KertOptions kopt;
  EXPECT_EQ(mined.RenderNode(mined.tree().root(), kopt, 3), "(root)");
  for (int leaf : mined.tree().Leaves()) {
    std::string rendered = mined.RenderNode(leaf, kopt, 3);
    EXPECT_FALSE(rendered.empty());
  }
}

}  // namespace
}  // namespace latent::api
