// Tests for the one-call convenience API (src/api): the Mine() entry point,
// input/option validation, the MinedHierarchy lifetime contract, and the
// MakeIndex() bridge into the serving layer.
#include <gtest/gtest.h>

#include <atomic>
#include <utility>

#include "api/latent.h"
#include "data/synthetic_hin.h"

namespace latent::api {
namespace {

data::HinDataset SmallDs() {
  data::HinDatasetOptions opt = data::DblpLikeOptions(800, 55);
  opt.num_areas = 3;
  opt.subareas_per_area = 2;
  return data::GenerateHinDataset(opt);
}

PipelineOptions SmallOptions() {
  PipelineOptions opt;
  opt.build.levels_k = {3, 2};
  opt.build.max_depth = 2;
  opt.build.cluster.restarts = 2;
  opt.build.cluster.max_iters = 50;
  opt.build.cluster.seed = 7;
  opt.miner.min_support = 4;
  return opt;
}

PipelineInput InputOf(const data::HinDataset& ds) {
  return PipelineInput(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
}

TEST(ApiTest, MinesFullHierarchyWithEntities) {
  data::HinDataset ds = SmallDs();
  StatusOr<MinedHierarchy> result = Mine(InputOf(ds), SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status().message();
  const MinedHierarchy& mined = result.value();
  EXPECT_EQ(mined.tree().node(0).children.size(), 3u);
  EXPECT_EQ(mined.tree().Height(), 2);
  EXPECT_GT(mined.dict().size(), 0);

  phrase::KertOptions kopt;
  for (int node : mined.tree().NodesAtLevel(1)) {
    auto phrases = mined.TopPhrases(node, kopt, 5);
    EXPECT_FALSE(phrases.empty()) << node;
    auto authors = mined.TopEntities(node, 1, 5);
    EXPECT_FALSE(authors.empty()) << node;
  }
}

TEST(ApiTest, TextOnlyPipelineWorks) {
  data::HinDataset ds = SmallDs();
  StatusOr<MinedHierarchy> result =
      Mine(PipelineInput(ds.corpus), SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status().message();
  const MinedHierarchy& mined = result.value();
  EXPECT_EQ(mined.tree().num_types(), 1);
  phrase::KertOptions kopt;
  std::string tree = mined.RenderTree(kopt, 3);
  EXPECT_NE(tree.find("o/1"), std::string::npos);
  EXPECT_NE(tree.find("o/1/1"), std::string::npos);
}

TEST(ApiTest, RenderNodeHandlesRootAndLeaves) {
  data::HinDataset ds = SmallDs();
  StatusOr<MinedHierarchy> result =
      Mine(PipelineInput(ds.corpus), SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status().message();
  const MinedHierarchy& mined = result.value();
  phrase::KertOptions kopt;
  EXPECT_EQ(mined.RenderNode(mined.tree().root(), kopt, 3), "(root)");
  for (int leaf : mined.tree().Leaves()) {
    std::string rendered = mined.RenderNode(leaf, kopt, 3);
    EXPECT_FALSE(rendered.empty());
  }
}

TEST(ApiTest, RunReportTotalsMatchObservableWork) {
  data::HinDataset ds = SmallDs();
  PipelineOptions opt = SmallOptions();
  obs::Registry registry;
  opt.metrics = &registry;
  StatusOr<MinedHierarchy> result = Mine(InputOf(ds), opt);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const obs::RunReport& rep = result.value().run_report();
#if defined(LATENT_OBS_ENABLED)
  // Every internal (expanded) node of the final tree corresponds to exactly
  // one fresh fit — no checkpointing in this run, so nothing came cached.
  uint64_t internal_nodes = 0;
  const core::TopicHierarchy& tree = result.value().tree();
  for (int id = 0; id < tree.num_nodes(); ++id) {
    if (!tree.node(id).children.empty()) ++internal_nodes;
  }
  EXPECT_EQ(rep.nodes_fitted, internal_nodes);
  EXPECT_EQ(rep.nodes_cached, 0u);
  // EM ran (iterations, at least one restart per fit) and the whole call
  // was timed.
  EXPECT_GT(rep.em_iterations, 0u);
  EXPECT_GE(rep.em_restarts, rep.nodes_fitted);
  EXPECT_GT(rep.total_ms, 0.0);
  // No checkpointing configured.
  EXPECT_EQ(rep.checkpoint_flushes, 0u);
  EXPECT_EQ(rep.checkpoint_generation, 0);
  // The report is a view of the caller's registry.
  EXPECT_EQ(rep.em_iterations, registry.CounterValue("em.iterations"));
  EXPECT_EQ(rep.nodes_fitted, registry.CounterValue("build.fit.nodes"));
#else
  EXPECT_EQ(rep.em_iterations, 0u);
  EXPECT_EQ(rep.nodes_fitted, 0u);
#endif
  // An empty shell reports zeros rather than check-failing.
  MinedHierarchy empty;
  EXPECT_EQ(empty.run_report().em_iterations, 0u);
}

TEST(ApiTest, ProgressCallbackSeesMonotoneTotals) {
  data::HinDataset ds = SmallDs();
  PipelineOptions opt = SmallOptions();
  opt.progress_every_ms = 0;  // unthrottled
  opt.exec.num_threads = 1;   // serialize callbacks so totals are ordered
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> last_iters{0};
  std::atomic<bool> monotone{true};
  opt.progress = [&](const obs::ProgressEvent& ev) {
    calls.fetch_add(1);
    uint64_t prev = last_iters.exchange(ev.em_iterations);
    if (ev.em_iterations < prev) monotone.store(false);
  };
  StatusOr<MinedHierarchy> result = Mine(InputOf(ds), opt);
  ASSERT_TRUE(result.ok()) << result.status().message();
#if defined(LATENT_OBS_ENABLED)
  // Fires during the run (works without an explicit registry) plus the
  // forced final report; totals never go backwards.
  EXPECT_GT(calls.load(), 1u);
  EXPECT_TRUE(monotone.load());
  EXPECT_GT(last_iters.load(), 0u);
#else
  EXPECT_EQ(calls.load(), 0u);
#endif
}

TEST(ApiTest, ValidateRejectsNegativeProgressInterval) {
  data::HinDataset ds = SmallDs();
  PipelineOptions opt = SmallOptions();
  opt.progress_every_ms = -1;
  StatusOr<MinedHierarchy> result = Mine(InputOf(ds), opt);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApiTest, MakeIndexBridgesToServe) {
  data::HinDataset ds = SmallDs();
  StatusOr<MinedHierarchy> mined = Mine(InputOf(ds), SmallOptions());
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  StatusOr<serve::HierarchyIndex> index = mined.value().MakeIndex();
  ASSERT_TRUE(index.ok()) << index.status().message();
  EXPECT_EQ(index.value().num_topics(), mined.value().tree().num_nodes());
  EXPECT_EQ(index.value().num_phrases(), mined.value().dict().size());
  EXPECT_EQ(index.value().word_type(), mined.value().kert().word_type());
  // The snapshot answers without the pipeline objects: root lookup works
  // and carries the tree's child count.
  StatusOr<serve::TopicView> root = index.value().Lookup("o");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().meta.children.size(),
            mined.value().tree().node(0).children.size());
}

TEST(ApiValidationTest, OptionDefaultsAreValid) {
  EXPECT_TRUE(PipelineOptions().Validate().ok());
}

TEST(ApiValidationTest, RejectsBadOptions) {
  auto expect_rejected = [](PipelineOptions opt) {
    Status s = opt.Validate();
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(s.message().empty());
  };
  PipelineOptions opt;
  opt.build.cluster.num_topics = 0;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.build.k_min = 0;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.build.k_min = 5;
  opt.build.k_max = 3;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.build.max_depth = -1;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.build.min_network_weight = -2.0;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.build.cluster.tol = -1e-6;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.build.cluster.restarts = 0;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.miner.min_support = 0;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.miner.max_length = 0;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.kert.gamma = 1.5;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.kert.omega = -0.1;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.kert.min_topical_support = -1.0;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.exec.num_threads = -2;
  expect_rejected(opt);

  // Run-control bounds: negative values are never "unbounded".
  opt = PipelineOptions();
  opt.deadline_ms = -1;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.work_budget = -7;
  expect_rejected(opt);

  // Checkpoint knobs.
  opt = PipelineOptions();
  opt.checkpoint_every_nodes = -1;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.checkpoint_every_ms = -100;
  expect_rejected(opt);

  opt = PipelineOptions();
  opt.resume = true;  // nothing to resume FROM
  expect_rejected(opt);
}

TEST(ApiValidationTest, RejectsBadInput) {
  data::HinDataset ds = SmallDs();

  PipelineInput no_corpus;
  EXPECT_FALSE(no_corpus.Validate().ok());

  // names/sizes length mismatch.
  PipelineInput mismatched = InputOf(ds);
  mismatched.schema.sizes.pop_back();
  EXPECT_FALSE(mismatched.Validate().ok());

  // Negative universe size.
  PipelineInput negative = InputOf(ds);
  negative.schema.sizes[0] = -1;
  EXPECT_FALSE(negative.Validate().ok());

  // Wrong number of entity docs.
  std::vector<hin::EntityDoc> short_docs(ds.corpus.num_docs() - 1);
  PipelineInput short_input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      short_docs);
  EXPECT_FALSE(short_input.Validate().ok());

  // Entity id outside its declared universe.
  PipelineInput narrowed = InputOf(ds);
  narrowed.schema.sizes[0] = 1;
  EXPECT_FALSE(narrowed.Validate().ok());

  EXPECT_TRUE(InputOf(ds).Validate().ok());
}

TEST(ApiValidationTest, MineReturnsStatusInsteadOfCrashing) {
  data::HinDataset ds = SmallDs();
  PipelineOptions opt = SmallOptions();
  opt.build.cluster.num_topics = 0;
  StatusOr<MinedHierarchy> result = Mine(InputOf(ds), opt);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  PipelineInput bad;
  StatusOr<MinedHierarchy> no_corpus = Mine(bad, SmallOptions());
  EXPECT_FALSE(no_corpus.ok());
}

// Lifetime contract: a default-constructed MinedHierarchy (the empty slot
// inside an errored StatusOr) has no corpus; accessors must check-fail
// rather than dereference null.
TEST(ApiDeathTest, EmptyHierarchyAccessorsCheckFail) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MinedHierarchy empty;
  EXPECT_DEATH({ (void)empty.tree(); }, "empty MinedHierarchy");
  EXPECT_DEATH({ (void)empty.kert(); }, "empty MinedHierarchy");
  EXPECT_DEATH({ (void)empty.dict(); }, "empty MinedHierarchy");
}

TEST(ApiDeathTest, ErroredStatusOrValueCheckFails) {
  data::HinDataset ds = SmallDs();
  PipelineOptions opt = SmallOptions();
  opt.miner.min_support = 0;
  StatusOr<MinedHierarchy> result = Mine(InputOf(ds), opt);
  ASSERT_FALSE(result.ok());
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH({ (void)result.value(); }, "min_support");
}

}  // namespace
}  // namespace latent::api
