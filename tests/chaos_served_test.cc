// Chaos harness: the latent_served daemon under runtime fault schedules.
//
// Where torture_served_kill_test proves one failure mode (SIGKILL) is
// survivable, this harness turns several on at once and asserts the whole
// failure-domain contract end to end:
//
//   * a real daemon armed with >= 3 simultaneous --failpoints schedules
//     (served.read, served.write, served.stall) keeps answering — every
//     successful response is byte-identical to a fault-free reference run,
//     and the client-visible error rate stays bounded;
//   * served::ResilientClient rides through injected read/write failures,
//     a SIGKILL + same-port restart mid-workload, and a dead daemon —
//     reconnecting, retrying under its deterministic backoff schedule,
//     and tripping its circuit breaker open/half-open/closed exactly as
//     documented;
//   * the snapshot-free health verb answers under chaos;
//   * the same seed and the same fault schedule replay the same
//     retry/backoff trace (two fresh daemon+client runs, compared
//     entry-for-entry and pinned against io::BackoffSequence).
//
// Registered with ctest as chaos.served (labels "chaos;served") and
// rebuilt under TSan/ASan as tsan.chaos / asan.chaos.
// Usage: chaos_served_test <path-to-latent_served>
// A missing/invalid binary path skips the test (exit 0). The fault-
// schedule phases additionally require failpoints compiled in
// (-DLATENT_FAILPOINTS=ON, the default); under -DLATENT_FAILPOINTS=OFF
// the harness still runs the kill/restart and breaker phases.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/retry.h"
#include "data/io.h"
#include "data/synthetic_hin.h"
#include "obs/obs.h"
#include "served/protocol.h"
#include "served/resilient_client.h"

namespace {

using namespace latent;

std::string g_dir;

std::string Path(const std::string& name) { return g_dir + "/" + name; }

int Fail(const std::string& why) {
  std::fprintf(stderr, "FAIL: %s\n", why.c_str());
  return 1;
}

pid_t Spawn(const std::vector<std::string>& args) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  int fd = ::open(Path("chaos.log").c_str(), O_WRONLY | O_CREAT | O_APPEND,
                  0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

void KillAndReap(pid_t pid, int sig) {
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

// Waits for the daemon to write its port file (it does so only once bound
// and serving). Returns the port, or -1 on timeout / a daemon that died
// during startup.
int AwaitPort(pid_t pid, const std::string& port_file, long long timeout_ms) {
  long long waited = 0;
  while (waited < timeout_ms) {
    auto blob = data::ReadFile(port_file);
    if (blob.ok() && !blob.value().empty()) {
      return std::atoi(blob.value().c_str());
    }
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) return -1;
    ::usleep(20000);
    waited += 20;
  }
  return -1;
}

// Daemon argv: watchdog always on (50 ms scans, 2 s stuck threshold) so
// every phase also exercises the watchdog thread's start/scan/join path.
// port == 0 picks an ephemeral port; a non-empty `failpoints` spec arms
// runtime fault schedules in the daemon process only — this test process
// never arms anything, so the client-side served.read/served.write sites
// stay dormant.
std::vector<std::string> ServedArgs(const std::string& served,
                                    const std::string& port_file, int port,
                                    const std::string& failpoints) {
  std::vector<std::string> args = {
      served,           "--corpus",    Path("corpus.txt"),
      "--entities",     Path("entities.tsv"),
      "--levels",       "2,2",
      "--min-support",  "4",
      "--seed",         "7",
      "--threads",      "1",
      "--port",         std::to_string(port),
      "--port-file",    port_file,
      "--max-inflight", "2",
      "--watchdog-ms",  "50",
      "--stuck-ms",     "2000",
  };
  if (!failpoints.empty()) {
    args.push_back("--failpoints");
    args.push_back(failpoints);
  }
  return args;
}

served::WireRequest Query(served::Verb verb, const std::string& arg) {
  served::WireRequest req;
  req.verb = verb;
  req.arg = arg;
  req.k = -1;
  req.deadline_ms = 0;
  return req;
}

// Retry policy for the chaos workload: 6 attempts, short jittered
// backoffs. Deterministic per call (seeded from the policy seed).
io::RetryPolicy WorkloadPolicy() {
  io::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 5;
  policy.max_backoff_ms = 100;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  return policy;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || ::access(argv[1], X_OK) != 0) {
    std::fprintf(stderr, "SKIP: latent_served binary not given/executable\n");
    return 0;
  }
  // Daemons die mid-response on purpose; writes to their sockets must not
  // kill this process.
  ::signal(SIGPIPE, SIG_IGN);
  const std::string served = argv[1];
  const bool faults = run::failpoint::CompiledIn();
  if (!faults) {
    std::fprintf(stderr,
                 "NOTE: failpoints compiled out; running without fault "
                 "schedules (kill/restart and breaker phases only)\n");
  }
  const char* tmp = std::getenv("TMPDIR");
  g_dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/latent_served_chaos";
  ::system(("rm -rf " + g_dir).c_str());
  if (::mkdir(g_dir.c_str(), 0755) != 0) return Fail("cannot mkdir " + g_dir);

  // Synthetic corpus + entity attachments, same shape as the torture
  // harness (small enough that mine-at-startup stays fast).
  data::HinDatasetOptions dopt = data::DblpLikeOptions(600, 40);
  dopt.num_areas = 2;
  dopt.subareas_per_area = 2;
  data::HinDataset ds = data::GenerateHinDataset(dopt);
  {
    std::string corpus_txt;
    for (const text::Document& doc : ds.corpus.docs()) {
      std::string line;
      for (int id : doc.tokens) {
        if (!line.empty()) line += " ";
        line += ds.corpus.vocab().Token(id);
      }
      corpus_txt += line + "\n";
    }
    if (!data::WriteFile(Path("corpus.txt"), corpus_txt).ok()) {
      return Fail("cannot write corpus");
    }
    std::string tsv;
    for (size_t d = 0; d < ds.entity_docs.size(); ++d) {
      const auto& types = ds.entity_docs[d].entities;
      for (size_t t = 0; t < types.size(); ++t) {
        for (int id : types[t]) {
          tsv += std::to_string(d) + "\t" + ds.entity_type_names[t] + "\te" +
                 std::to_string(t) + "_" + std::to_string(id) + "\n";
        }
      }
    }
    if (!data::WriteFile(Path("entities.tsv"), tsv).ok()) {
      return Fail("cannot write entities");
    }
  }

  const std::vector<served::WireRequest> queries = {
      Query(served::Verb::kLookup, "o"),
      Query(served::Verb::kSearch, ds.corpus.vocab().Token(0)),
      Query(served::Verb::kSearch,
            ds.corpus.vocab().Token(1) + " " + ds.corpus.vocab().Token(2)),
      Query(served::Verb::kSubtree, "o"),
  };

  // ---- Phase A: fault-free reference run + health verb contract. ----
  std::vector<std::string> reference_bodies;
  {
    pid_t pid = Spawn(ServedArgs(served, Path("port.a"), 0, ""));
    const int port = AwaitPort(pid, Path("port.a"), /*timeout_ms=*/120000);
    if (port <= 0) {
      KillAndReap(pid, SIGKILL);
      return Fail("reference daemon did not come up (see " +
                  Path("chaos.log") + ")");
    }
    {
      served::Client client;
      if (!served::ConnectWithRetry(&client, port).ok()) {
        KillAndReap(pid, SIGKILL);
        return Fail("cannot connect to reference daemon");
      }
      for (const served::WireRequest& q : queries) {
        StatusOr<served::WireResponse> resp = client.Call(q);
        if (!resp.ok() || resp.value().code != StatusCode::kOk) {
          KillAndReap(pid, SIGKILL);
          return Fail("reference query failed");
        }
        reference_bodies.push_back(resp.value().body);
      }
      // The snapshot-free health verb: kOk, one `key value` pair per line,
      // all five keys present, a published generation.
      StatusOr<served::WireResponse> health =
          client.Call(Query(served::Verb::kHealth, ""));
      if (!health.ok() || health.value().code != StatusCode::kOk) {
        KillAndReap(pid, SIGKILL);
        return Fail("health verb failed against a healthy daemon");
      }
      const std::string& body = health.value().body;
      for (const char* key : {"generation ", "queue_depth ", "inflight ",
                              "uptime_ms ", "stuck_workers "}) {
        if (body.find(key) == std::string::npos) {
          KillAndReap(pid, SIGKILL);
          return Fail(std::string("health body is missing '") + key +
                      "': " + body);
        }
      }
      if (health.value().generation <= 0) {
        KillAndReap(pid, SIGKILL);
        return Fail("health response carries no published generation");
      }
    }
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return Fail("reference daemon did not drain cleanly on SIGTERM");
    }
  }

  // ---- Phase B: workload against a daemon under three simultaneous
  // fault schedules; every success must be byte-identical to the
  // reference, the error rate bounded. ----
  const std::string chaos_spec =
      faults ? "served.read=p:0.35;served.write=p:0.35;served.stall=every:5;"
               "seed:42"
             : "";
  pid_t chaos_pid = Spawn(ServedArgs(served, Path("port.b"), 0, chaos_spec));
  const int chaos_port = AwaitPort(chaos_pid, Path("port.b"), 120000);
  if (chaos_port <= 0) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("chaos daemon did not come up (see " + Path("chaos.log") +
                ")");
  }

  obs::Registry metrics;
  served::ResilientClientOptions ropt;
  ropt.retry = WorkloadPolicy();
  ropt.breaker_failures = 0;  // breaker gets its own phase below
  ropt.metrics = &metrics;
  served::ResilientClient rc(chaos_port, ropt);

  const int kWorkload = 160;
  int errors = 0;
  for (int i = 0; i < kWorkload; ++i) {
    if (i % 40 == 39) {
      // Health answers under chaos too (through the same retry shield).
      StatusOr<served::WireResponse> h =
          rc.Call(Query(served::Verb::kHealth, ""));
      if (h.ok() && h.value().code != StatusCode::kOk) {
        KillAndReap(chaos_pid, SIGKILL);
        return Fail("health under chaos answered a non-OK code");
      }
      if (!h.ok()) ++errors;
      continue;
    }
    const size_t qi = static_cast<size_t>(i) % queries.size();
    StatusOr<served::WireResponse> resp = rc.Call(queries[qi]);
    if (!resp.ok()) {
      ++errors;
      continue;
    }
    if (resp.value().code != StatusCode::kOk) {
      KillAndReap(chaos_pid, SIGKILL);
      return Fail("chaos workload surfaced a non-OK application code " +
                  std::to_string(static_cast<int>(resp.value().code)) + ": " +
                  resp.value().body);
    }
    if (resp.value().body != reference_bodies[qi]) {
      KillAndReap(chaos_pid, SIGKILL);
      return Fail("chaos workload answered different bytes for query " +
                  std::to_string(qi));
    }
  }
  // Bounded error rate: the retry shield should absorb essentially every
  // injected fault (per-call failure odds are well under 1e-4); 5% slack
  // keeps the bound insensitive to scheduling noise.
  if (errors * 20 > kWorkload) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("chaos error rate above 5%: " + std::to_string(errors) +
                " of " + std::to_string(kWorkload));
  }
  if (::kill(chaos_pid, 0) != 0) {
    return Fail("chaos daemon died during the workload");
  }
#if defined(LATENT_OBS_ENABLED)
  if (faults && metrics.CounterValue("client.retries") == 0) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("fault schedules armed but the client never retried — "
                "the chaos was not real");
  }
#endif

  // ---- Phase C: SIGKILL the chaos daemon mid-workload, restart it on
  // the same port, and keep using the SAME client: it must fail cleanly
  // while the daemon is down and recover transparently once it is back.
  // ----
  const uint64_t reconnects_before =
#if defined(LATENT_OBS_ENABLED)
      metrics.CounterValue("client.reconnects");
#else
      0;
#endif
  KillAndReap(chaos_pid, SIGKILL);
  for (int i = 0; i < 2; ++i) {
    StatusOr<served::WireResponse> resp = rc.Call(queries[0]);
    if (resp.ok() && resp.value().code == StatusCode::kOk) {
      return Fail("dead daemon answered a query");
    }
  }
  chaos_pid = Spawn(ServedArgs(served, Path("port.c"), chaos_port,
                               chaos_spec));
  if (AwaitPort(chaos_pid, Path("port.c"), 120000) != chaos_port) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("restarted chaos daemon did not come up on the same port");
  }
  bool recovered = false;
  for (int i = 0; i < 50 && !recovered; ++i) {
    StatusOr<served::WireResponse> resp = rc.Call(queries[0]);
    if (!resp.ok()) continue;
    if (resp.value().code != StatusCode::kOk ||
        resp.value().body != reference_bodies[0]) {
      KillAndReap(chaos_pid, SIGKILL);
      return Fail("restarted daemon answered wrong bytes to the surviving "
                  "client");
    }
    recovered = true;
  }
  if (!recovered) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("client did not recover after daemon kill+restart");
  }
  int post_restart_errors = 0;
  for (int i = 0; i < 20; ++i) {
    const size_t qi = static_cast<size_t>(i) % queries.size();
    StatusOr<served::WireResponse> resp = rc.Call(queries[qi]);
    if (!resp.ok()) {
      ++post_restart_errors;
      continue;
    }
    if (resp.value().code != StatusCode::kOk ||
        resp.value().body != reference_bodies[qi]) {
      KillAndReap(chaos_pid, SIGKILL);
      return Fail("post-restart response diverged from the reference");
    }
  }
  if (post_restart_errors > 1) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("post-restart error rate too high: " +
                std::to_string(post_restart_errors) + " of 20");
  }
#if defined(LATENT_OBS_ENABLED)
  if (metrics.CounterValue("client.reconnects") <= reconnects_before) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("client recovered without counting a reconnect");
  }
#endif
  rc.Close();

  // ---- Phase D: circuit breaker transitions against a dead daemon,
  // half-open probe against its replacement. ----
  KillAndReap(chaos_pid, SIGKILL);
  obs::Registry breaker_metrics;
  served::ResilientClientOptions bopt;
  bopt.retry = WorkloadPolicy();
  bopt.retry.max_attempts = 2;
  bopt.breaker_failures = 2;
  bopt.breaker_cooldown_ms = 400;
  bopt.metrics = &breaker_metrics;
  served::ResilientClient rcb(chaos_port, bopt);
  for (int i = 0; i < 2; ++i) {
    if (rcb.Call(queries[0]).ok()) {
      return Fail("call against a dead daemon succeeded");
    }
  }
  if (rcb.breaker_state() != served::ResilientClient::BreakerState::kOpen) {
    return Fail("breaker did not open after 2 consecutive failed calls");
  }
  {
    StatusOr<served::WireResponse> fastfail = rcb.Call(queries[0]);
    if (fastfail.ok()) return Fail("open breaker admitted a call");
    if (fastfail.status().code() != StatusCode::kResourceExhausted ||
        fastfail.status().message().find("circuit breaker open") ==
            std::string::npos) {
      return Fail("open breaker fast-fail has the wrong shape: " +
                  fastfail.status().message());
    }
    if (rcb.consecutive_failures() != 2) {
      return Fail("a fast-failed call fed the breaker failure count");
    }
  }
  // Restart (fault-free this time) on the same port, then wait out the
  // cooldown so the next call runs as the half-open probe — success must
  // close the breaker.
  chaos_pid = Spawn(ServedArgs(served, Path("port.d"), chaos_port, ""));
  if (AwaitPort(chaos_pid, Path("port.d"), 120000) != chaos_port) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("breaker-phase daemon did not come up on the same port");
  }
  ::usleep(static_cast<useconds_t>((bopt.breaker_cooldown_ms + 100) * 1000));
  {
    StatusOr<served::WireResponse> probe = rcb.Call(queries[0]);
    if (!probe.ok() || probe.value().code != StatusCode::kOk ||
        probe.value().body != reference_bodies[0]) {
      KillAndReap(chaos_pid, SIGKILL);
      return Fail("half-open probe did not succeed with reference bytes");
    }
  }
  if (rcb.breaker_state() != served::ResilientClient::BreakerState::kClosed) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("successful probe did not close the breaker");
  }
#if defined(LATENT_OBS_ENABLED)
  if (breaker_metrics.CounterValue("client.breaker.opens") == 0 ||
      breaker_metrics.CounterValue("client.breaker.fastfails") == 0 ||
      breaker_metrics.CounterValue("client.breaker.probes") == 0) {
    KillAndReap(chaos_pid, SIGKILL);
    return Fail("breaker transition counters did not move");
  }
#endif
  rcb.Close();
  ::kill(chaos_pid, SIGTERM);
  {
    int status = 0;
    ::waitpid(chaos_pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return Fail("breaker-phase daemon did not drain cleanly on SIGTERM");
    }
  }

  // ---- Phase E: determinism pin. The schedule served.write=count:3,skip:6
  // passes the daemon's first 6 response writes, then fires the next 3 —
  // exactly the daemon-side retry budget for one response — so exactly one
  // client call (the 7th) retries exactly once. Same seed + same schedule
  // must replay the same backoff trace, and that trace must match
  // io::BackoffSequence on the same policy. ----
  if (faults) {
    io::RetryPolicy det_policy;
    det_policy.max_attempts = 4;
    det_policy.initial_backoff_ms = 10;
    det_policy.max_backoff_ms = 1000;
    det_policy.multiplier = 2.0;
    det_policy.jitter = 0.5;
    auto run_trace = [&](const std::string& tag,
                         std::vector<long long>* trace) -> int {
      const std::string port_file = Path("port.e" + tag);
      pid_t pid = Spawn(ServedArgs(served, port_file, 0,
                                   "served.write=count:3,skip:6"));
      const int port = AwaitPort(pid, port_file, 120000);
      if (port <= 0) {
        KillAndReap(pid, SIGKILL);
        return Fail("determinism daemon " + tag + " did not come up");
      }
      served::ResilientClientOptions opt;
      opt.retry = det_policy;
      opt.breaker_failures = 0;
      served::ResilientClient client(port, opt);
      for (int i = 0; i < 8; ++i) {
        StatusOr<served::WireResponse> resp = client.Call(queries[0]);
        if (!resp.ok() || resp.value().code != StatusCode::kOk ||
            resp.value().body != reference_bodies[0]) {
          KillAndReap(pid, SIGKILL);
          return Fail("determinism run " + tag + " call " +
                      std::to_string(i) + " did not succeed byte-identically");
        }
      }
      *trace = client.backoff_trace();
      client.Close();
      ::kill(pid, SIGTERM);
      int status = 0;
      ::waitpid(pid, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        return Fail("determinism daemon " + tag + " did not drain cleanly");
      }
      return 0;
    };
    std::vector<long long> trace1, trace2;
    if (run_trace("1", &trace1) != 0) return 1;
    if (run_trace("2", &trace2) != 0) return 1;
    if (trace1.size() != 1) {
      return Fail("expected exactly one client retry from "
                  "served.write=count:3,skip:6; backoff trace has " +
                  std::to_string(trace1.size()) + " entries");
    }
    if (trace1 != trace2) {
      return Fail("same seed + same schedule replayed a different backoff "
                  "trace");
    }
    io::BackoffSequence expected(det_policy);
    if (trace1[0] != expected.NextMs()) {
      return Fail("backoff trace diverged from io::BackoffSequence: got " +
                  std::to_string(trace1[0]));
    }
  }

  std::fprintf(stderr,
               "PASS: %d/%d chaos calls failed (bounded), byte-identical "
               "successes, breaker open->half-open->closed, deterministic "
               "backoff trace%s\n",
               errors, kWorkload,
               faults ? "" : " (fault schedules compiled out; skipped)");
  return 0;
}
