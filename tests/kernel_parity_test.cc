// Byte-parity of the restrict-qualified hot-loop kernels
// (common/math_util.h) against plain scalar references that implement the
// documented association — the four-lane reductions, the reciprocal row
// normalize, the serial-order co-occurrence denominator, and the SoA
// accumulation versus the fused AoS E-step of the seed implementation.
// Every EXPECT_EQ on doubles here is intentionally exact: these identities
// are what lets the blocked/partitioned E-step stay bit-identical at any
// worker count (docs/PERFORMANCE.md, "Determinism rule"). Also covers the
// per-fit Arena contract and FitCluster-level worker-count invariance.
//
// Runs in the default suite and as tsan.kernels / asan.kernels under
// sanitizer builds (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/arena.h"
#include "common/math_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/clusterer.h"
#include "hin/network.h"

namespace latent {
namespace {

std::vector<double> RandomVec(size_t n, uint64_t seed, double lo = -3.0,
                              double hi = 3.0) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

// Scalar reference for the documented four-lane reduction: element i feeds
// lane i % 4 (tail continues the rotation), lanes combine (l0+l1)+(l2+l3).
double RefSumFourLane(const double* x, size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) lane[i % 4] += x[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double RefDotFourLane(const double* x, const double* y, size_t n) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) lane[i % 4] += x[i] * y[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double RefLogSumExpFourLane(const double* x, size_t n) {
  double mlane[4] = {x[0], x[0], x[0], x[0]};
  for (size_t i = 0; i < n; ++i) {
    if (x[i] > mlane[i % 4]) mlane[i % 4] = x[i];
  }
  const double m01 = mlane[0] > mlane[1] ? mlane[0] : mlane[1];
  const double m23 = mlane[2] > mlane[3] ? mlane[2] : mlane[3];
  const double m = m01 > m23 ? m01 : m23;
  if (!std::isfinite(m)) return m;
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) lane[i % 4] += std::exp(x[i] - m);
  return m + std::log((lane[0] + lane[1]) + (lane[2] + lane[3]));
}

// Lengths that cross every lane-remainder case plus a few big ones.
const size_t kLens[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000, 1021};

TEST(KernelParityTest, SumMatchesFourLaneReference) {
  EXPECT_EQ(KernelSum(nullptr, 0), 0.0);
  for (size_t n : kLens) {
    std::vector<double> x = RandomVec(n, 100 + n);
    EXPECT_EQ(KernelSum(x.data(), n), RefSumFourLane(x.data(), n)) << n;
  }
}

TEST(KernelParityTest, DotMatchesFourLaneReference) {
  for (size_t n : kLens) {
    std::vector<double> x = RandomVec(n, 200 + n);
    std::vector<double> y = RandomVec(n, 300 + n);
    EXPECT_EQ(KernelDot(x.data(), y.data(), n),
              RefDotFourLane(x.data(), y.data(), n))
        << n;
  }
}

TEST(KernelParityTest, LogSumExpMatchesFourLaneReference) {
  for (size_t n : kLens) {
    std::vector<double> x = RandomVec(n, 400 + n, -30.0, 10.0);
    EXPECT_EQ(KernelLogSumExp(x.data(), n),
              RefLogSumExpFourLane(x.data(), n))
        << n;
  }
}

TEST(KernelParityTest, LogSumExpGuardsNonFiniteMax) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> all_ninf(7, -inf);
  EXPECT_EQ(KernelLogSumExp(all_ninf.data(), all_ninf.size()), -inf);
  std::vector<double> with_pinf = RandomVec(9, 42);
  with_pinf[5] = inf;
  EXPECT_EQ(KernelLogSumExp(with_pinf.data(), with_pinf.size()), inf);
}

TEST(KernelParityTest, RowNormalizeScalesByReciprocalOfFourLaneSum) {
  for (size_t n : kLens) {
    std::vector<double> x = RandomVec(n, 500 + n, 0.0, 5.0);
    std::vector<double> ref = x;
    // Reference: the documented contract — one division, then a multiply
    // sweep (NOT per-element division, which rounds differently).
    const double total = RefSumFourLane(ref.data(), n);
    const double inv = 1.0 / total;
    for (double& v : ref) v *= inv;

    std::vector<double> got = x;
    EXPECT_EQ(KernelRowNormalize(got.data(), n), total) << n;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(got[i], ref[i]) << n << ":" << i;
  }
}

TEST(KernelParityTest, RowNormalizeZeroMassFillsUniform) {
  std::vector<double> x(5, 0.0);
  EXPECT_EQ(KernelRowNormalize(x.data(), x.size()), 0.0);
  for (double v : x) EXPECT_EQ(v, 1.0 / 5.0);
  EXPECT_EQ(KernelRowNormalize(nullptr, 0), 0.0);
}

TEST(KernelParityTest, VectorWrappersDelegateToKernels) {
  // The std::vector helpers the wider codebase calls must produce the same
  // bits as the raw kernels so a caller migrating between the two forms
  // never perturbs a deterministic run.
  for (size_t n : {size_t{5}, size_t{64}, size_t{1000}}) {
    std::vector<double> x = RandomVec(n, 600 + n, 0.1, 4.0);
    std::vector<double> y = RandomVec(n, 700 + n, 0.1, 4.0);
    EXPECT_EQ(Sum(x), KernelSum(x.data(), n));
    EXPECT_EQ(Dot(x, y), KernelDot(x.data(), y.data(), n));
    EXPECT_EQ(LogSumExp(x), KernelLogSumExp(x.data(), n));
    std::vector<double> a = x, b = x;
    EXPECT_EQ(NormalizeInPlace(&a), KernelRowNormalize(b.data(), n));
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(KernelParityTest, ScaleAxpyRotateMatchScalarReferences) {
  const size_t n = 37;
  std::vector<double> x = RandomVec(n, 800);
  std::vector<double> y = RandomVec(n, 801);
  std::vector<double> rx = x, ry = y;
  const double a = 1.7, c = 0.6, s = 0.8;

  std::vector<double> gx = x;
  KernelScale(gx.data(), n, a);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(gx[i], rx[i] * a);

  std::vector<double> gy = y;
  KernelAxpy(a, x.data(), gy.data(), n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(gy[i], ry[i] + a * rx[i]);

  std::vector<double> gp = x, gq = y;
  KernelRotate(gp.data(), gq.data(), n, c, s);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(gp[i], c * rx[i] - s * ry[i]);
    EXPECT_EQ(gq[i], s * rx[i] + c * ry[i]);
  }
}

TEST(KernelParityTest, CoocDenomMatchesSerialOrder) {
  for (int k : {1, 3, 4, 7, 12}) {
    std::vector<double> rho = RandomVec(k, 900 + k, 0.01, 1.0);
    std::vector<double> xi = RandomVec(k, 910 + k, 0.0, 1.0);
    std::vector<double> yj = RandomVec(k, 920 + k, 0.0, 1.0);
    double ref = 0.0;
    for (int z = 0; z < k; ++z) ref += rho[z] * xi[z] * yj[z];
    EXPECT_EQ(KernelCoocDenom(rho.data(), xi.data(), yj.data(), k), ref) << k;
  }
}

// SoA accumulation versus the fused AoS E-step loop of the seed
// implementation: same links, same order, byte-identical accumulators —
// including a self-link (same type, i == j) where the SoA call's acc_x and
// acc_y alias and must each receive ehat twice.
TEST(KernelParityTest, CoocAccumulateSoAMatchesFusedAoSReference) {
  const int k = 5, nodes = 16;
  std::vector<double> rho = RandomVec(k, 1000, 0.05, 1.0);
  // Node-major phi rows (unit stride in z), one per node.
  std::vector<double> phi_nm = RandomVec(static_cast<size_t>(nodes) * k, 1001,
                                         0.0, 1.0);
  struct Link {
    int i, j;
    double inv;
  };
  // Mixed regular links and one exact self-link (5, 5).
  const std::vector<Link> links = {
      {0, 3, 0.7}, {5, 5, 1.3}, {2, 9, 0.4}, {15, 1, 2.0}, {9, 2, 0.9}};

  // Reference: seed-era nested AoS new_phi[z][i] with the fused per-z loop.
  std::vector<std::vector<double>> aos(k, std::vector<double>(nodes, 0.0));
  std::vector<double> aos_rho(k, 0.0);
  for (const Link& l : links) {
    for (int z = 0; z < k; ++z) {
      const double ehat =
          rho[z] * phi_nm[static_cast<size_t>(l.i) * k + z] *
          phi_nm[static_cast<size_t>(l.j) * k + z] * l.inv;
      aos_rho[z] += ehat;
      aos[z][l.i] += ehat;
      aos[z][l.j] += ehat;
    }
  }

  // SoA: topic-major acc[z * stride + node], pointers pre-offset per link.
  const size_t stride = nodes;
  std::vector<double> soa(static_cast<size_t>(k) * stride, 0.0);
  std::vector<double> soa_rho(k, 0.0);
  for (const Link& l : links) {
    KernelCoocAccumulate(rho.data(), phi_nm.data() + static_cast<size_t>(l.i) * k,
                         phi_nm.data() + static_cast<size_t>(l.j) * k, l.inv,
                         0, k, soa_rho.data(), soa.data() + l.i, stride,
                         soa.data() + l.j, stride);
  }
  for (int z = 0; z < k; ++z) {
    EXPECT_EQ(soa_rho[z], aos_rho[z]) << z;
    for (int i = 0; i < nodes; ++i) {
      EXPECT_EQ(soa[static_cast<size_t>(z) * stride + i], aos[z][i])
          << z << ":" << i;
    }
  }
}

// Splitting the subtopic span across "workers" must not change a single
// bit: per-slot accumulation order is per-z, and each z lands in exactly
// one span.
TEST(KernelParityTest, CoocAccumulateSpanDecompositionIsExact) {
  const int k = 11, nodes = 8;
  std::vector<double> rho = RandomVec(k, 1100, 0.05, 1.0);
  std::vector<double> xi = RandomVec(k, 1101, 0.0, 1.0);
  std::vector<double> yj = RandomVec(k, 1102, 0.0, 1.0);

  auto run_spans = [&](const std::vector<std::pair<int, int>>& spans) {
    std::vector<double> acc(static_cast<size_t>(k) * nodes, 0.0);
    std::vector<double> nrho(k, 0.0);
    for (const auto& [b, e] : spans) {
      KernelCoocAccumulate(rho.data(), xi.data(), yj.data(), 0.8, b, e,
                           nrho.data(), acc.data() + 2, nodes,
                           acc.data() + 6, nodes);
    }
    nrho.insert(nrho.end(), acc.begin(), acc.end());
    return nrho;
  };
  const auto whole = run_spans({{0, k}});
  const auto halves = run_spans({{0, k / 2}, {k / 2, k}});
  const auto thirds = run_spans({{0, 3}, {3, 9}, {9, k}});
  EXPECT_EQ(whole, halves);
  EXPECT_EQ(whole, thirds);
}

TEST(ArenaTest, AllocationsAreCacheLineAlignedAndZeroFillWorks) {
  Arena arena(128);
  for (size_t bytes : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                       size_t{4096}, size_t{1} << 20}) {
    void* p = arena.Alloc(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u) << bytes;
  }
  double* z = arena.AllocZeroed<double>(513);
  for (int i = 0; i < 513; ++i) ASSERT_EQ(z[i], 0.0) << i;
}

TEST(ArenaTest, ResetKeepsLargestBlockForReuse) {
  Arena arena(256);
  arena.AllocArray<double>(64);
  arena.AllocArray<double>(100000);  // forces a larger second block
  const size_t reserved_before = arena.bytes_reserved();
  EXPECT_GT(arena.bytes_used(), 0u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Only the largest block survives the reset...
  EXPECT_LT(arena.bytes_reserved(), reserved_before);
  const size_t kept = arena.bytes_reserved();
  // ...and a same-shape reuse is served from it without growing.
  arena.AllocArray<double>(100000);
  EXPECT_EQ(arena.bytes_reserved(), kept);
}

TEST(ArenaTest, UsedBytesTrackAlignmentRoundedRequests) {
  Arena arena;
  arena.Alloc(1);
  EXPECT_EQ(arena.bytes_used(), Arena::kAlignment);
  arena.Alloc(65);
  EXPECT_EQ(arena.bytes_used(), 3 * Arena::kAlignment);
}

// A heterogeneous network with a self-type link type (term-term, including
// exact self-links) and a cross-type link type — the shapes that stress the
// aliasing and offset arithmetic of the SoA E-step.
hin::HeteroNetwork MixedNetwork() {
  hin::HeteroNetwork net({"term", "author"}, {24, 12});
  const int tt = net.AddLinkType(0, 0);
  const int ta = net.AddLinkType(0, 1);
  Rng rng(7);
  for (int e = 0; e < 140; ++e) {
    const int i = rng.UniformInt(24);
    // Bias toward two planted blocks so EM has structure to find.
    const int j = (i < 12) ? rng.UniformInt(12) : 12 + rng.UniformInt(12);
    net.AddLink(tt, i, j, 1.0 + rng.UniformInt(4));  // i == j possible
  }
  for (int e = 0; e < 90; ++e) {
    const int i = rng.UniformInt(24);
    const int j = (i < 12) ? rng.UniformInt(6) : 6 + rng.UniformInt(6);
    net.AddLink(ta, i, j, 1.0 + rng.UniformInt(3));
  }
  net.Coalesce();
  return net;
}

// The whole point of the kernel contracts above: a full FitCluster (SoA
// phi, blocked two-phase E-step, arena scratch) returns bit-identical
// models whether the E-step runs serial or partitioned across 2 or 8 pool
// workers.
TEST(KernelParityTest, FitClusterBitIdenticalAcrossWorkerCounts) {
  hin::HeteroNetwork net = MixedNetwork();
  auto parent = core::DegreeDistributions(net);
  core::ClusterOptions opt;
  opt.num_topics = 3;
  opt.background = true;  // exercises the background rows of the SoA blocks
  opt.restarts = 2;
  opt.max_iters = 40;
  opt.seed = 19;

  core::ClusterResult serial = core::FitCluster(net, parent, opt);
  ASSERT_EQ(serial.k, 3);
  ASSERT_FALSE(serial.diverged);

  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    exec::ExecOptions eopt;
    eopt.num_threads = threads;
    eopt.deterministic = true;
    exec::Executor ex(eopt);
    core::ClusterResult par = core::FitCluster(net, parent, opt, &ex);

    ASSERT_EQ(par.k, serial.k);
    EXPECT_EQ(par.log_likelihood, serial.log_likelihood);
    EXPECT_EQ(par.bic_score, serial.bic_score);
    EXPECT_EQ(par.rho, serial.rho);
    EXPECT_EQ(par.rho_bg, serial.rho_bg);
    ASSERT_EQ(par.phi.size(), serial.phi.size());
    for (size_t z = 0; z < serial.phi.size(); ++z) {
      EXPECT_EQ(par.phi[z], serial.phi[z]) << "z=" << z;
    }
    EXPECT_EQ(par.phi_bg, serial.phi_bg);
    EXPECT_EQ(par.alpha, serial.alpha);
  }
}

}  // namespace
}  // namespace latent
