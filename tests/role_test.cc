// Tests for Chapter 5: entity topical role analysis.
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "core/hierarchy.h"
#include "phrase/frequent_miner.h"
#include "phrase/kert.h"
#include "role/role_analysis.h"
#include "text/corpus.h"

namespace latent::role {
namespace {

// Corpus with two topics; entity A's documents are about "query processing",
// entity B's are about "query optimization" (both in the DB topic), and a
// third batch is ML.
struct Fixture {
  text::Corpus corpus;
  phrase::PhraseDict dict;
  core::TopicHierarchy tree;
  std::vector<int> docs_a, docs_b;

  Fixture() : tree({"term"}, {0}) {}
};

Fixture MakeFixture() {
  Fixture f;
  for (int i = 0; i < 15; ++i) {
    f.docs_a.push_back(f.corpus.num_docs());
    f.corpus.AddTokenizedDocument({"query", "processing", "database"});
    f.docs_b.push_back(f.corpus.num_docs());
    f.corpus.AddTokenizedDocument({"query", "optimization", "database"});
    f.corpus.AddTokenizedDocument({"machine", "learning", "models"});
  }
  phrase::MinerOptions mopt;
  mopt.min_support = 5;
  f.dict = phrase::MineFrequentPhrases(f.corpus, mopt);

  int v = f.corpus.vocab_size();
  f.tree = core::TopicHierarchy({"term"}, {v});
  std::vector<double> root(v, 1.0 / v);
  f.tree.AddRoot({root}, 100.0);
  auto topic_phi = [&](const std::vector<const char*>& words) {
    std::vector<double> phi(v, 1e-9);
    for (const char* w : words) phi[f.corpus.vocab().Lookup(w)] = 1.0;
    NormalizeInPlace(&phi);
    return phi;
  };
  f.tree.AddChild(0, 0.67,
                  {topic_phi({"query", "processing", "optimization",
                              "database"})},
                  67.0);
  f.tree.AddChild(0, 0.33, {topic_phi({"machine", "learning", "models"})},
                  33.0);
  return f;
}

TEST(EntityPhraseRankerTest, EntitySpecificPhrasesRankFirst) {
  Fixture f = MakeFixture();
  phrase::KertScorer kert(f.corpus, f.dict, f.tree);
  EntityPhraseRanker ranker(kert);
  phrase::KertOptions kopt;
  kopt.gamma = 0.0;  // do not filter; tiny vocabulary
  kopt.min_topical_support = 3.0;

  auto ranked_a = ranker.Rank(1, f.docs_a, kopt, 0.9, 5);
  ASSERT_FALSE(ranked_a.empty());
  std::string top_a = f.dict.ToString(ranked_a[0].first, f.corpus.vocab());
  EXPECT_NE(top_a.find("processing"), std::string::npos) << top_a;

  auto ranked_b = ranker.Rank(1, f.docs_b, kopt, 0.9, 5);
  std::string top_b = f.dict.ToString(ranked_b[0].first, f.corpus.vocab());
  EXPECT_NE(top_b.find("optimization"), std::string::npos) << top_b;
}

TEST(EntityPhraseRankerTest, ContributionScoreSignsMakeSense) {
  Fixture f = MakeFixture();
  phrase::KertScorer kert(f.corpus, f.dict, f.tree);
  EntityPhraseRanker ranker(kert);
  int qp = f.dict.Lookup({f.corpus.vocab().Lookup("query"),
                          f.corpus.vocab().Lookup("processing")});
  int qo = f.dict.Lookup({f.corpus.vocab().Lookup("query"),
                          f.corpus.vocab().Lookup("optimization")});
  ASSERT_GE(qp, 0);
  ASSERT_GE(qo, 0);
  // Entity A over-produces "query processing" and never touches
  // "query optimization".
  EXPECT_GT(ranker.ContributionScore(1, qp, f.docs_a, 3.0),
            ranker.ContributionScore(1, qo, f.docs_a, 3.0));
}

TEST(EntityTopicProfileTest, DocFrequenciesFollowHierarchy) {
  Fixture f = MakeFixture();
  phrase::KertScorer kert(f.corpus, f.dict, f.tree);
  EntityTopicProfile profile(kert, f.tree);
  // A DB doc concentrates under child 1.
  std::vector<double> fd = profile.DocTopicFrequencies(f.docs_a[0]);
  EXPECT_NEAR(fd[0], 1.0, 1e-12);
  EXPECT_GT(fd[1], 0.9);
  EXPECT_LT(fd[2], 0.1);
  // Children sum to at most the parent.
  EXPECT_LE(fd[1] + fd[2], fd[0] + 1e-9);
}

TEST(EntityTopicProfileTest, EntityFrequenciesAggregate) {
  Fixture f = MakeFixture();
  phrase::KertScorer kert(f.corpus, f.dict, f.tree);
  EntityTopicProfile profile(kert, f.tree);
  std::vector<double> fa = profile.EntityTopicFrequencies(f.docs_a);
  EXPECT_NEAR(fa[0], 15.0, 1e-9);
  EXPECT_GT(fa[1], 13.0);  // nearly all docs in the DB topic
  EXPECT_LT(fa[2], 2.0);
}

TEST(RankEntitiesTest, PurityDemotesSharedEntities) {
  // Hierarchy with an entity type: entity 0 pure in topic 1, entity 1
  // shared across topics, entity 2 pure in topic 2.
  core::TopicHierarchy tree({"term", "author"}, {2, 3});
  tree.AddRoot({{0.5, 0.5}, {0.34, 0.33, 0.33}}, 10.0);
  tree.AddChild(0, 0.5, {{1.0, 0.0}, {0.55, 0.45, 0.0}}, 5.0);
  tree.AddChild(0, 0.5, {{0.0, 1.0}, {0.0, 0.45, 0.55}}, 5.0);

  auto pop = RankEntitiesForTopic(tree, 1, 1, /*use_purity=*/false, 3);
  EXPECT_EQ(pop[0].first, 0);  // popularity alone: entity 0 barely wins
  auto pur = RankEntitiesForTopic(tree, 1, 1, /*use_purity=*/true, 3);
  EXPECT_EQ(pur[0].first, 0);
  // The shared entity 1 must fall behind entity 0 by a larger margin under
  // purity; its purity score can even go negative.
  double margin_pop = pop[0].second - pop[1].second;
  double score_e1 =
      [&] {
        for (const auto& [e, s] : pur) {
          if (e == 1) return s;
        }
        return 0.0;
      }();
  EXPECT_LT(score_e1, pur[0].second - margin_pop);
}

}  // namespace
}  // namespace latent::role
