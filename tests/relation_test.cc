// Tests for Chapter 6: collaboration network statistics, TPFG
// preprocessing rules, factor-graph inference, and the supervised CRF.
#include <vector>

#include <gtest/gtest.h>

#include "baselines/advisor_heuristics.h"
#include "data/advisor_gen.h"
#include "eval/relation_metrics.h"
#include "relation/collab_network.h"
#include "relation/crf.h"
#include "relation/tpfg.h"
#include "relation/tpfg_preprocess.h"
#include "common/rng.h"

namespace latent::relation {
namespace {

TEST(CollabNetworkTest, CumulativeCountsAndYears) {
  YearSeries s = {{2000, 2.0}, {2002, 1.0}};
  EXPECT_DOUBLE_EQ(CumulativeCount(s, 1999), 0.0);
  EXPECT_DOUBLE_EQ(CumulativeCount(s, 2000), 2.0);
  EXPECT_DOUBLE_EQ(CumulativeCount(s, 2005), 3.0);
  EXPECT_EQ(FirstYear(s), 2000);
  EXPECT_EQ(LastYear(s), 2002);
}

TEST(CollabNetworkTest, AddPaperUpdatesAuthorsAndEdges) {
  CollabNetwork net(3);
  net.AddPaper(2000, {0, 1});
  net.AddPaper(2001, {0, 1, 2});
  EXPECT_DOUBLE_EQ(CumulativeCount(net.author_series(0), 2001), 2.0);
  EXPECT_DOUBLE_EQ(CumulativeCount(net.author_series(2), 2001), 1.0);
  const CoauthorEdge* e01 = net.FindEdge(1, 0);
  ASSERT_NE(e01, nullptr);
  EXPECT_DOUBLE_EQ(CumulativeCount(e01->joint, 2001), 2.0);
  EXPECT_EQ(net.FindEdge(0, 0), nullptr);
}

TEST(CollabNetworkTest, KulczynskiSymmetricIrAntisymmetric) {
  CollabNetwork net(2);
  net.AddPaper(2000, {0, 1});
  net.AddPaper(2000, {1});
  net.AddPaper(2000, {1});
  // n0 = 1, n1 = 3, joint = 1. kulc = 0.5 * 1 * (1 + 1/3) = 2/3.
  EXPECT_NEAR(net.Kulczynski(0, 1, 2000), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(net.Kulczynski(1, 0, 2000), 2.0 / 3.0, 1e-12);
  // IR(0,1) = (3 - 1) / (1 + 3 - 1) = 2/3; antisymmetric.
  EXPECT_NEAR(net.ImbalanceRatio(0, 1, 2000), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(net.ImbalanceRatio(1, 0, 2000), -2.0 / 3.0, 1e-12);
}

// A tiny hand-built world: advisor 0 (publishing from 1990), student 1
// (starts 1996, advised 1996-2000 with growing joint counts), plus an
// unrelated contemporary 2.
CollabNetwork TinyWorld() {
  CollabNetwork net(3);
  for (int y = 1990; y <= 2010; ++y) net.AddPaper(y, {0});
  for (int y = 1996; y <= 2000; ++y) {
    for (int k = 0; k < y - 1995; ++k) net.AddPaper(y, {0, 1});
  }
  for (int y = 2001; y <= 2010; ++y) net.AddPaper(y, {1});
  for (int y = 1992; y <= 2010; ++y) net.AddPaper(y, {2});
  net.AddPaper(2005, {1, 2});
  return net;
}

TEST(PreprocessTest, BuildsCandidateWithAdvisorDirectionOnly) {
  CollabNetwork net = TinyWorld();
  PreprocessOptions opt;
  CandidateDag dag = BuildCandidateDag(net, opt);
  // Author 1 should have author 0 as candidate.
  bool found = false;
  for (const Candidate& c : dag.candidates[1]) {
    if (c.advisor == 0) {
      found = true;
      EXPECT_EQ(c.start_year, 1996);
      EXPECT_GE(c.end_year, 1996);
      EXPECT_GT(c.likelihood, 0.0);
    }
  }
  EXPECT_TRUE(found);
  // Author 0 must not have 1 as a candidate (0 published first).
  for (const Candidate& c : dag.candidates[0]) EXPECT_NE(c.advisor, 1);
  // Every author has the virtual-root candidate; likelihoods normalized.
  for (int i = 0; i < 3; ++i) {
    double total = 0.0;
    bool has_root = false;
    for (const Candidate& c : dag.candidates[i]) {
      total += c.likelihood;
      if (c.advisor < 0) has_root = true;
    }
    EXPECT_TRUE(has_root);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(PreprocessTest, RuleR3DropsSingleYearCollaborations) {
  CollabNetwork net(2);
  for (int y = 1990; y <= 2000; ++y) net.AddPaper(y, {0});
  net.AddPaper(1995, {1});
  net.AddPaper(1996, {0, 1});  // one-year collaboration
  PreprocessOptions opt;
  opt.rule_r3 = true;
  CandidateDag dag = BuildCandidateDag(net, opt);
  for (const Candidate& c : dag.candidates[1]) EXPECT_NE(c.advisor, 0);
  opt.rule_r3 = false;
  opt.rule_r2 = false;  // single-year sequences cannot increase either
  dag = BuildCandidateDag(net, opt);
  bool found = false;
  for (const Candidate& c : dag.candidates[1]) found |= (c.advisor == 0);
  EXPECT_TRUE(found);
}

TEST(PreprocessTest, RuleR1DropsNegativeImbalance) {
  CollabNetwork net(2);
  // Author 0 publishes first but author 1 out-publishes them massively.
  net.AddPaper(1990, {0});
  for (int y = 1995; y <= 1999; ++y) {
    net.AddPaper(y, {0, 1});
    for (int k = 0; k < 8; ++k) net.AddPaper(y, {1});
  }
  PreprocessOptions opt;
  opt.rule_r4 = false;
  CandidateDag dag = BuildCandidateDag(net, opt);
  for (const Candidate& c : dag.candidates[1]) EXPECT_NE(c.advisor, 0);
}

TEST(TpfgTest, RecoverstinyWorldAdvisor) {
  CollabNetwork net = TinyWorld();
  PreprocessOptions popt;
  CandidateDag dag = BuildCandidateDag(net, popt);
  TpfgResult r = RunTpfg(dag, TpfgOptions());
  EXPECT_EQ(r.predicted[1], 0);
  EXPECT_EQ(r.predicted[0], -1);
  // Scores normalized per advisee.
  for (int i = 0; i < 3; ++i) {
    double total = 0.0;
    for (double s : r.scores[i]) total += s;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TpfgTest, TimeConstraintSuppressesCycles) {
  // x advised by i (2000-2004); i's own advising by j must end before 2000.
  // Build a chain j(1970-) -> i(1980-) -> x(1990-): all constraints hold.
  CollabNetwork net(3);
  for (int y = 1970; y <= 2010; ++y) net.AddPaper(y, {0});       // j
  for (int y = 1980; y <= 1986; ++y) net.AddPaper(y, {0, 1});    // advising
  for (int y = 1987; y <= 2010; ++y) net.AddPaper(y, {1});       // i solo
  for (int y = 1990; y <= 1995; ++y) net.AddPaper(y, {1, 2});    // advising
  for (int y = 1996; y <= 2010; ++y) net.AddPaper(y, {2});       // x solo
  PreprocessOptions popt;
  popt.rule_r2 = false;
  CandidateDag dag = BuildCandidateDag(net, popt);
  TpfgResult r = RunTpfg(dag, TpfgOptions());
  EXPECT_EQ(r.predicted[1], 0);
  EXPECT_EQ(r.predicted[2], 1);
}

TEST(TpfgTest, GeneratedForestHighAccuracy) {
  data::AdvisorGenOptions gopt;
  gopt.num_root_advisors = 10;
  gopt.generations = 2;
  gopt.seed = 5;
  data::AdvisorDataset ds = data::GenerateAdvisorDataset(gopt);
  PreprocessOptions popt;
  CandidateDag dag = BuildCandidateDag(*ds.network, popt);
  TpfgResult r = RunTpfg(dag, TpfgOptions());
  auto m = eval::EvaluateAdvisorPredictions(r.predicted, ds.true_advisor);
  EXPECT_GT(m.accuracy, 0.7) << "TPFG should recover most planted advisors";
}

TEST(TpfgTest, BeatsLocalHeuristicsOnNoisyData) {
  data::AdvisorGenOptions gopt;
  gopt.num_root_advisors = 12;
  gopt.noise_collab_rate = 0.4;
  gopt.seed = 9;
  data::AdvisorDataset ds = data::GenerateAdvisorDataset(gopt);
  PreprocessOptions popt;
  CandidateDag dag = BuildCandidateDag(*ds.network, popt);
  TpfgResult r = RunTpfg(dag, TpfgOptions());
  auto tpfg = eval::EvaluateAdvisorPredictions(r.predicted, ds.true_advisor);
  auto ir_pred = baselines::PredictAdvisorsHeuristic(
      *ds.network, dag, baselines::AdvisorHeuristic::kImbalanceRatio);
  auto ir = eval::EvaluateAdvisorPredictions(ir_pred, ds.true_advisor);
  EXPECT_GE(tpfg.accuracy, ir.accuracy - 0.02)
      << "TPFG should not lose to the IR heuristic";
}

TEST(TpfgTest, PredictAtKThresholdBehaviour) {
  CollabNetwork net = TinyWorld();
  PreprocessOptions popt;
  CandidateDag dag = BuildCandidateDag(net, popt);
  TpfgResult r = RunTpfg(dag, TpfgOptions());
  // k = 1, theta = 0: same as argmax among real candidates when they beat
  // the root.
  std::vector<int> at1 = PredictAtK(dag, r, 1, 0.5);
  EXPECT_EQ(at1[1], 0);
  // Impossible threshold plus root dominance: falls back to the argmax
  // comparison with the root score.
  std::vector<int> strict = PredictAtK(dag, r, 1, 1.1);
  EXPECT_TRUE(strict[1] == 0 || strict[1] == -1);
}

TEST(CrfTest, FeaturesHaveExpectedShape) {
  CollabNetwork net = TinyWorld();
  PreprocessOptions popt;
  CandidateDag dag = BuildCandidateDag(net, popt);
  for (size_t c = 0; c < dag.candidates[1].size(); ++c) {
    auto f = RelationCrf::Features(net, dag, 1, static_cast<int>(c));
    EXPECT_EQ(f.size(), static_cast<size_t>(RelationCrf::kNumFeatures));
    EXPECT_DOUBLE_EQ(f[0], 1.0);
    if (dag.candidates[1][c].advisor < 0) {
      EXPECT_DOUBLE_EQ(f[7], 1.0);
    } else {
      EXPECT_DOUBLE_EQ(f[7], 0.0);
      EXPECT_GT(f[1], 0.0);
    }
  }
}

TEST(CrfTest, TrainingImprovesOverUntrained) {
  data::AdvisorGenOptions gopt;
  gopt.num_root_advisors = 12;
  gopt.noise_collab_rate = 0.8;
  gopt.seed = 11;
  data::AdvisorDataset ds = data::GenerateAdvisorDataset(gopt);
  // Permissive preprocessing: keep noisy candidates so the unaries matter.
  PreprocessOptions popt;
  popt.rule_r1 = false;
  popt.rule_r2 = false;
  popt.rule_r4 = false;
  CandidateDag dag = BuildCandidateDag(*ds.network, popt);

  // Split authors into train/test halves.
  std::vector<int> train, test;
  for (int i = 0; i < ds.num_authors; ++i) {
    (i % 2 == 0 ? train : test).push_back(i);
  }
  RelationCrf crf;
  CrfOptions copt;
  crf.Train(*ds.network, dag, train, ds.true_advisor, copt);
  TpfgResult trained = crf.Infer(*ds.network, dag, TpfgOptions());
  auto m_trained =
      eval::EvaluateAdvisorPredictions(trained.predicted, ds.true_advisor,
                                       test);
  EXPECT_GT(m_trained.accuracy, 0.8);

  // Learned weights should value the unsupervised local likelihood
  // positively and know the virtual root is a fallback.
  EXPECT_GT(crf.weights()[1], 0.0);

  // Adversarial priors (random unaries) must do worse than the learned
  // unaries under the same constraint factors.
  Rng prior_rng(77);
  std::vector<std::vector<double>> random_priors(dag.candidates.size());
  for (size_t i = 0; i < dag.candidates.size(); ++i) {
    random_priors[i] =
        prior_rng.Dirichlet(1.0, static_cast<int>(dag.candidates[i].size()));
  }
  TpfgResult base = RunTpfg(dag, TpfgOptions(), &random_priors);
  auto m_base = eval::EvaluateAdvisorPredictions(base.predicted,
                                                 ds.true_advisor, test);
  EXPECT_GT(m_trained.accuracy, m_base.accuracy);
}

TEST(AdvisorGenTest, DatasetIsWellFormed) {
  data::AdvisorGenOptions gopt;
  gopt.seed = 3;
  data::AdvisorDataset ds = data::GenerateAdvisorDataset(gopt);
  EXPECT_GT(ds.num_authors, gopt.num_root_advisors);
  int advised = 0;
  for (int i = 0; i < ds.num_authors; ++i) {
    if (ds.true_advisor[i] >= 0) {
      ++advised;
      // The advisor publishes before the student (Assumption 6.2).
      EXPECT_LT(FirstYear(ds.network->author_series(ds.true_advisor[i])),
                FirstYear(ds.network->author_series(i)));
      // They actually co-published.
      EXPECT_NE(ds.network->FindEdge(i, ds.true_advisor[i]), nullptr);
    }
  }
  EXPECT_GT(advised, 0);
}

}  // namespace
}  // namespace latent::relation
