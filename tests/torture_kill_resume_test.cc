// Torture harness: kill-and-resume crash recovery for the latent_mine CLI.
//
// Spawns real `latent_mine` processes against a synthetic HIN corpus with
// checkpointing enabled, SIGKILLs them at staggered points mid-run, resumes
// with --resume after every kill, and finally byte-compares the saved tree
// against an uninterrupted reference run. Thread counts are alternated
// across attempts (and differ from the reference run) so the comparison
// also exercises the cross-thread-count determinism contract.
//
// Registered with ctest under the "torture" label (see tests/CMakeLists.txt):
//   ctest -L torture
// Usage: torture_kill_resume_test <path-to-latent_mine>
// A missing/invalid binary path skips the test (exit 0) so the harness
// never breaks builds that do not produce the tool.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/io.h"
#include "data/synthetic_hin.h"

namespace {

using namespace latent;

std::string g_dir;

std::string Path(const std::string& name) { return g_dir + "/" + name; }

int Fail(const std::string& why) {
  std::fprintf(stderr, "FAIL: %s\n", why.c_str());
  return 1;
}

// Spawns `latent_mine` with stdout/stderr appended to a log file. Returns
// the child pid, or -1 on fork failure.
pid_t Spawn(const std::vector<std::string>& args) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  int fd = ::open(Path("mine.log").c_str(), O_WRONLY | O_CREAT | O_APPEND,
                  0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  _exit(127);
}

struct WaitResult {
  bool exited = false;  // normal exit (vs signal)
  int code = -1;        // exit code when exited
  bool killed_by_us = false;
};

// Waits for `pid`, killing it with SIGKILL after `kill_after_ms` (< 0 =
// never kill, wait for completion).
WaitResult AwaitOrKill(pid_t pid, long long kill_after_ms) {
  WaitResult r;
  if (kill_after_ms >= 0) {
    // Poll in 5ms steps so a fast child is reaped promptly.
    long long waited = 0;
    while (waited < kill_after_ms) {
      int status = 0;
      pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        r.exited = WIFEXITED(status);
        r.code = r.exited ? WEXITSTATUS(status) : -1;
        return r;
      }
      ::usleep(5000);
      waited += 5;
    }
    ::kill(pid, SIGKILL);
    r.killed_by_us = true;
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!r.killed_by_us) {
    r.exited = WIFEXITED(status);
    r.code = r.exited ? WEXITSTATUS(status) : -1;
  }
  return r;
}

// Sends `sig` after `after_ms` and — unlike AwaitOrKill — records how the
// child ultimately exited, so a graceful handler's exit code is visible.
WaitResult SignalAndWait(pid_t pid, long long after_ms, int sig) {
  WaitResult r;
  long long waited = 0;
  while (waited < after_ms) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      r.exited = WIFEXITED(status);
      r.code = r.exited ? WEXITSTATUS(status) : -1;
      return r;
    }
    ::usleep(5000);
    waited += 5;
  }
  ::kill(pid, sig);
  r.killed_by_us = true;
  int status = 0;
  ::waitpid(pid, &status, 0);
  r.exited = WIFEXITED(status);
  r.code = r.exited ? WEXITSTATUS(status) : -1;
  return r;
}

std::vector<std::string> MineArgs(const std::string& mine,
                                  const std::string& out, int threads,
                                  bool checkpoint,
                                  const std::string& inference = "",
                                  const std::string& ckpt_dir = "ckpt") {
  std::vector<std::string> args = {
      mine,           "--corpus",      Path("corpus.txt"),
      "--entities",   Path("entities.tsv"),
      "--levels",     "3,2",
      "--min-support", "4",
      "--seed",       "7",
      "--threads",    std::to_string(threads),
      "--save",       out,
  };
  if (!inference.empty()) {
    args.insert(args.end(), {"--inference", inference});
  }
  if (checkpoint) {
    args.insert(args.end(), {"--checkpoint-dir", Path(ckpt_dir),
                             "--checkpoint-every", "1", "--resume"});
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || ::access(argv[1], X_OK) != 0) {
    std::fprintf(stderr, "SKIP: latent_mine binary not given/executable\n");
    return 0;
  }
  const std::string mine = argv[1];
  const char* tmp = std::getenv("TMPDIR");
  g_dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/latent_torture";
  ::system(("rm -rf " + g_dir).c_str());
  if (::mkdir(g_dir.c_str(), 0755) != 0) return Fail("cannot mkdir " + g_dir);

  // Synthesize a corpus + entity attachments and write them in the formats
  // latent_mine loads (one document per line; doc \t type \t entity TSV).
  data::HinDatasetOptions dopt = data::DblpLikeOptions(1200, 55);
  dopt.num_areas = 3;
  dopt.subareas_per_area = 2;
  data::HinDataset ds = data::GenerateHinDataset(dopt);
  {
    std::string corpus_txt;
    for (const text::Document& doc : ds.corpus.docs()) {
      std::string line;
      for (int id : doc.tokens) {
        if (!line.empty()) line += " ";
        line += ds.corpus.vocab().Token(id);
      }
      corpus_txt += line + "\n";
    }
    if (!data::WriteFile(Path("corpus.txt"), corpus_txt).ok()) {
      return Fail("cannot write corpus");
    }
    std::string tsv;
    for (size_t d = 0; d < ds.entity_docs.size(); ++d) {
      const auto& types = ds.entity_docs[d].entities;
      for (size_t t = 0; t < types.size(); ++t) {
        for (int id : types[t]) {
          tsv += std::to_string(d) + "\t" + ds.entity_type_names[t] + "\te" +
                 std::to_string(t) + "_" + std::to_string(id) + "\n";
        }
      }
    }
    if (!data::WriteFile(Path("entities.tsv"), tsv).ok()) {
      return Fail("cannot write entities");
    }
  }

  // Reference: one uninterrupted, checkpoint-free run.
  {
    WaitResult r = AwaitOrKill(
        Spawn(MineArgs(mine, Path("ref.bin"), /*threads=*/1,
                       /*checkpoint=*/false)),
        /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 0) {
      return Fail("reference run failed (see " + Path("mine.log") + ")");
    }
  }
  auto ref = data::ReadFile(Path("ref.bin"));
  if (!ref.ok()) return Fail("reference tree missing");

  // Kill-and-resume loop: SIGKILL at staggered delays, alternating thread
  // counts, resuming each time. Stops as soon as one attempt survives to
  // completion.
  int kills = 0;
  bool completed = false;
  const int kMaxAttempts = 12;
  for (int attempt = 0; attempt < kMaxAttempts && !completed; ++attempt) {
    const int threads = attempt % 2 == 0 ? 1 : 8;
    const long long delay_ms = 40 + 60LL * attempt;  // staggered kill points
    WaitResult r = AwaitOrKill(
        Spawn(MineArgs(mine, Path("out.bin"), threads, /*checkpoint=*/true)),
        delay_ms);
    if (r.killed_by_us) {
      ++kills;
      continue;
    }
    if (!r.exited || r.code != 0) {
      return Fail("interrupted run exited with an error (attempt " +
                  std::to_string(attempt) + ")");
    }
    completed = true;
  }
  if (!completed) {
    // Every staggered attempt was killed first; one final uninterrupted
    // resume must finish the job.
    WaitResult r = AwaitOrKill(
        Spawn(MineArgs(mine, Path("out.bin"), /*threads=*/8,
                       /*checkpoint=*/true)),
        /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 0) return Fail("final resume run failed");
  }

  auto out = data::ReadFile(Path("out.bin"));
  if (!out.ok()) return Fail("resumed tree missing");
  if (out.value() != ref.value()) {
    return Fail("resumed tree differs from the uninterrupted reference (" +
                std::to_string(kills) + " kills)");
  }

  // CLI contract: an unknown --inference value is a usage error (exit 2),
  // not a silent fallback to a default backend.
  {
    WaitResult r = AwaitOrKill(
        Spawn({mine, "--corpus", Path("corpus.txt"), "--inference", "bogus"}),
        /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 2) {
      return Fail("--inference bogus should exit 2, got " +
                  std::to_string(r.code));
    }
  }

  // Spectral smoke: the same kill/resume contract with the STROD backend.
  // One uninterrupted reference, one SIGKILLed checkpointed run, one
  // uninterrupted resume; the final tree must match the reference.
  int spectral_kills = 0;
  {
    WaitResult r = AwaitOrKill(
        Spawn(MineArgs(mine, Path("sref.bin"), /*threads=*/1,
                       /*checkpoint=*/false, "spectral")),
        /*kill_after_ms=*/-1);
    if (!r.exited || r.code != 0) {
      return Fail("spectral reference run failed (see " + Path("mine.log") +
                  ")");
    }
  }
  auto sref = data::ReadFile(Path("sref.bin"));
  if (!sref.ok()) return Fail("spectral reference tree missing");
  {
    WaitResult r = AwaitOrKill(
        Spawn(MineArgs(mine, Path("sout.bin"), /*threads=*/8,
                       /*checkpoint=*/true, "spectral", "sckpt")),
        /*kill_after_ms=*/25);
    if (r.killed_by_us) {
      ++spectral_kills;
    } else if (!r.exited || r.code != 0) {
      return Fail("interrupted spectral run exited with an error");
    }
    if (r.killed_by_us) {
      r = AwaitOrKill(
          Spawn(MineArgs(mine, Path("sout.bin"), /*threads=*/1,
                         /*checkpoint=*/true, "spectral", "sckpt")),
          /*kill_after_ms=*/-1);
      if (!r.exited || r.code != 0) return Fail("spectral resume run failed");
    }
  }
  auto sout = data::ReadFile(Path("sout.bin"));
  if (!sout.ok()) return Fail("resumed spectral tree missing");
  if (sout.value() != sref.value()) {
    return Fail("resumed spectral tree differs from its reference");
  }

  // Operator-kill contract (graceful, not SIGKILL): SIGTERM trips the
  // run's CancelToken inside latent_mine, which commits the partial
  // hierarchy frontier to --save and exits 0. Delays are staggered upward
  // because a signal landing before the handlers are installed (during
  // corpus load) still terminates the process the default way — that
  // attempt retries with a longer fuse.
  {
    bool pinned = false;
    for (long long delay_ms : {250LL, 500LL, 900LL, 1600LL}) {
      ::unlink(Path("term.bin").c_str());
      WaitResult r = SignalAndWait(
          Spawn(MineArgs(mine, Path("term.bin"), /*threads=*/1,
                         /*checkpoint=*/false)),
          delay_ms, SIGTERM);
      if (!r.exited || r.code != 0) continue;  // signal beat the handler
      auto partial = data::ReadFile(Path("term.bin"));
      if (!partial.ok() || partial.value().empty()) {
        return Fail("SIGTERM run exited 0 but committed no tree to --save");
      }
      // An uninterrupted finish (child won the race) writes the full tree;
      // it must then match the reference run byte for byte.
      if (!r.killed_by_us && partial.value() != ref.value()) {
        return Fail("uninterrupted SIGTERM-attempt tree differs from ref");
      }
      pinned = true;
      break;
    }
    if (!pinned) {
      return Fail("no SIGTERM attempt exited 0 with a committed tree");
    }
  }

  std::fprintf(stderr,
               "PASS: byte-identical trees after %d EM and %d spectral "
               "SIGKILL interruption(s); SIGTERM committed the frontier\n",
               kills, spectral_kills);
  return 0;
}
