// Fault-injection tests: the fail-point registry itself, injected I/O and
// EM failures (clean Status out, never a crash), crash-safe WriteFile
// semantics, and the hardened serialized-hierarchy parser against
// truncation, bit flips, and absurd declared sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "api/latent.h"
#include "ckpt/checkpoint.h"
#include "common/failpoint.h"
#include "core/serialize.h"
#include "data/io.h"
#include "data/synthetic_hin.h"

namespace latent {
namespace {

#if defined(LATENT_FAILPOINTS_ENABLED)
constexpr bool kFailpointsCompiledIn = true;
#else
constexpr bool kFailpointsCompiledIn = false;
#endif

// Every test disarms all sites on the way out so an assertion failure in
// one test cannot poison the rest of the binary.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFailpointsCompiledIn) {
      GTEST_SKIP() << "built with -DLATENT_FAILPOINTS=OFF";
    }
    run::failpoint::DisarmAll();
  }
  void TearDown() override { run::failpoint::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------------

using RegistryTest = FailpointTest;

TEST_F(RegistryTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(run::failpoint::ShouldFail("registry.test"));
  EXPECT_EQ(run::failpoint::HitCount("registry.test"), 0);
}

TEST_F(RegistryTest, CountAndSkipAreHonored) {
  run::failpoint::Arm("registry.test", /*count=*/2, /*skip=*/1);
  EXPECT_FALSE(run::failpoint::ShouldFail("registry.test"));  // skipped
  EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));   // fires
  EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));   // fires
  EXPECT_FALSE(run::failpoint::ShouldFail("registry.test"));  // exhausted
  EXPECT_EQ(run::failpoint::HitCount("registry.test"), 4);
}

TEST_F(RegistryTest, NegativeCountFiresForever) {
  run::failpoint::Arm("registry.test");
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));
  }
}

TEST_F(RegistryTest, DisarmStopsFiringAndResetsHits) {
  run::failpoint::Arm("registry.test");
  EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));
  run::failpoint::Disarm("registry.test");
  EXPECT_FALSE(run::failpoint::ShouldFail("registry.test"));
  EXPECT_EQ(run::failpoint::HitCount("registry.test"), 0);
}

TEST_F(RegistryTest, RearmingResetsCounters) {
  run::failpoint::Arm("registry.test", /*count=*/1);
  EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));
  EXPECT_FALSE(run::failpoint::ShouldFail("registry.test"));
  run::failpoint::Arm("registry.test", /*count=*/1);
  EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));
}

// ---------------------------------------------------------------------------
// Runtime fault schedules (ArmFromSpec + the probability/every modes).
// ---------------------------------------------------------------------------

using ScheduleTest = FailpointTest;

TEST_F(ScheduleTest, ProbabilityOneFiresEveryHit) {
  run::failpoint::ArmProbability("registry.test", 1.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));
  }
  EXPECT_EQ(run::failpoint::HitCount("registry.test"), 20);
  EXPECT_EQ(run::failpoint::FiredCount("registry.test"), 20);
}

TEST_F(ScheduleTest, ProbabilityFiringIsDeterministicPerSeed) {
  auto record = [](std::uint64_t seed) {
    run::failpoint::ArmProbability("registry.test", 0.4, seed);
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += run::failpoint::ShouldFail("registry.test") ? '1' : '0';
    }
    return pattern;
  };
  const std::string a = record(7);
  const std::string b = record(7);
  EXPECT_EQ(a, b);  // same seed, same hit order -> same firing pattern
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);
  // A different seed gives a different (but equally deterministic) stream.
  EXPECT_NE(record(8), a);
}

TEST_F(ScheduleTest, EveryNFiresExactlyTheNthHits) {
  run::failpoint::ArmEvery("registry.test", 3);
  std::string pattern;
  for (int i = 0; i < 9; ++i) {
    pattern += run::failpoint::ShouldFail("registry.test") ? '1' : '0';
  }
  EXPECT_EQ(pattern, "001001001");
  EXPECT_EQ(run::failpoint::FiredCount("registry.test"), 3);
}

TEST_F(ScheduleTest, SpecArmsEveryModeAndReportsTheCount) {
  StatusOr<int> armed = run::failpoint::ArmFromSpec(
      "registry.test=p:1.0; other.test=count:1,skip:1 ;third.test=every:2");
  ASSERT_TRUE(armed.ok()) << armed.status().message();
  EXPECT_EQ(armed.value(), 3);
  EXPECT_TRUE(run::failpoint::ShouldFail("registry.test"));
  EXPECT_FALSE(run::failpoint::ShouldFail("other.test"));  // skipped
  EXPECT_TRUE(run::failpoint::ShouldFail("other.test"));   // fires
  EXPECT_FALSE(run::failpoint::ShouldFail("other.test"));  // exhausted
  EXPECT_FALSE(run::failpoint::ShouldFail("third.test"));
  EXPECT_TRUE(run::failpoint::ShouldFail("third.test"));
}

TEST_F(ScheduleTest, SpecSeedDirectiveControlsTheProbabilityStreams) {
  auto record = [](const std::string& spec) {
    StatusOr<int> armed = run::failpoint::ArmFromSpec(spec);
    EXPECT_TRUE(armed.ok()) << armed.status().message();
    std::string pattern;
    for (int i = 0; i < 64; ++i) {
      pattern += run::failpoint::ShouldFail("registry.test") ? '1' : '0';
    }
    return pattern;
  };
  const std::string seed9 = record("seed:9;registry.test=p:0.4");
  EXPECT_EQ(record("seed:9;registry.test=p:0.4"), seed9);
  // The directive applies regardless of position in the spec.
  EXPECT_EQ(record("registry.test=p:0.4;seed:9"), seed9);
  EXPECT_NE(record("seed:10;registry.test=p:0.4"), seed9);
}

TEST_F(ScheduleTest, MalformedSpecsArmNothing) {
  for (const char* spec : {
           "registry.test",               // no mode
           "registry.test=",              // empty mode
           "registry.test=p:0",           // probability out of range
           "registry.test=p:1.5",         // probability out of range
           "registry.test=p:x",           // non-numeric probability
           "registry.test=count:-2",      // count below the -1 sentinel
           "registry.test=count:x",       // non-numeric count
           "registry.test=count:1,skip:-1",  // negative skip
           "registry.test=every:0",       // every must be >= 1
           "registry.test=often:3",       // unknown mode
           "=p:0.5",                      // empty site name
           "seed:x",                      // non-numeric seed
           "registry.test=p:0.5;;other.test=every",  // trailing bad entry
       }) {
    StatusOr<int> armed = run::failpoint::ArmFromSpec(spec);
    EXPECT_FALSE(armed.ok()) << spec;
    EXPECT_EQ(armed.status().code(), StatusCode::kInvalidArgument) << spec;
    // Parse-all-then-arm: even the valid entries of a bad spec stay
    // disarmed.
    EXPECT_FALSE(run::failpoint::ShouldFail("registry.test")) << spec;
  }
}

TEST_F(ScheduleTest, EmptySpecIsANoOp) {
  StatusOr<int> armed = run::failpoint::ArmFromSpec("");
  ASSERT_TRUE(armed.ok());
  EXPECT_EQ(armed.value(), 0);
}

// ---------------------------------------------------------------------------
// Injected I/O failures.
// ---------------------------------------------------------------------------

using IoFaultTest = FailpointTest;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST_F(IoFaultTest, InjectedReadFailureIsACleanStatusAndRecovers) {
  const std::string path = TempPath("fault_corpus.txt");
  ASSERT_TRUE(data::WriteFile(path, "alpha beta\ngamma delta\n").ok());

  run::failpoint::Arm("io.read", /*count=*/1);
  text::TokenizeOptions topt;
  auto failed = data::LoadCorpusFromFile(path, topt);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_NE(failed.status().message().find("io.read"), std::string::npos);

  // count=1 is spent: the retry succeeds without touching the registry.
  auto retried = data::LoadCorpusFromFile(path, topt);
  ASSERT_TRUE(retried.ok()) << retried.status().message();
  EXPECT_EQ(retried.value().num_docs(), 2);
}

TEST_F(IoFaultTest, MidWriteCrashLeavesExistingFileIntact) {
  const std::string path = TempPath("fault_write.txt");
  ASSERT_TRUE(data::WriteFile(path, "original contents\n").ok());

  run::failpoint::Arm("io.write.mid", /*count=*/1);
  const std::string replacement(4096, 'x');
  Status s = data::WriteFile(path, replacement);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("io.write.mid"), std::string::npos);

  // The destination still holds the OLD bytes: the torn write only ever
  // touched the temp file, which was never renamed into place.
  auto after = data::ReadFile(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), "original contents\n");

  // And a clean retry replaces it atomically.
  ASSERT_TRUE(data::WriteFile(path, replacement).ok());
  auto replaced = data::ReadFile(path);
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value(), replacement);
}

TEST_F(IoFaultTest, OpenFailureCreatesNothing) {
  const std::string path = TempPath("fault_never_created.txt");
  std::remove(path.c_str());
  run::failpoint::Arm("io.write.open", /*count=*/1);
  Status s = data::WriteFile(path, "should never land");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(data::ReadFile(path).ok());  // no file appeared
}

// ---------------------------------------------------------------------------
// Injected EM divergence: one poisoned iteration is absorbed by the
// seed-bumped retry; a permanently poisoned EM surfaces as kInternal.
// ---------------------------------------------------------------------------

data::HinDataset SmallDs() {
  data::HinDatasetOptions opt = data::DblpLikeOptions(800, 55);
  opt.num_areas = 3;
  opt.subareas_per_area = 2;
  return data::GenerateHinDataset(opt);
}

api::PipelineOptions SmallOptions() {
  api::PipelineOptions opt;
  opt.build.levels_k = {3, 2};
  opt.build.max_depth = 2;
  opt.build.cluster.restarts = 2;
  opt.build.cluster.max_iters = 50;
  opt.build.cluster.seed = 7;
  opt.miner.min_support = 4;
  return opt;
}

using EmFaultTest = FailpointTest;

TEST_F(EmFaultTest, SingleNanInjectionRecoversViaSeedRetry) {
  data::HinDataset ds = SmallDs();
  run::failpoint::Arm("em.nan", /*count=*/1);
  api::PipelineInput input(
      ds.corpus, api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  StatusOr<api::MinedHierarchy> result = api::Mine(input, SmallOptions());
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_GT(run::failpoint::HitCount("em.nan"), 0);  // it really fired
  EXPECT_FALSE(result.value().partial());
  EXPECT_EQ(result.value().tree().node(0).children.size(), 3u);
}

TEST_F(EmFaultTest, PersistentNanSurfacesAsInternalError) {
  data::HinDataset ds = SmallDs();
  run::failpoint::Arm("em.nan");  // every EM run diverges, retries included
  api::PipelineInput input(
      ds.corpus, api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  StatusOr<api::MinedHierarchy> result = api::Mine(input, SmallOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("diverged"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Serialized-hierarchy hardening.
// ---------------------------------------------------------------------------

core::TopicHierarchy SmallTree() {
  core::TopicHierarchy tree({"term", "author"}, {3, 2});
  tree.AddRoot({{0.5, 0.3, 0.2}, {0.6, 0.4}}, 10.0);
  int c1 = tree.AddChild(0, 0.7, {{1.0, 0.0, 0.0}, {1.0, 0.0}}, 7.0);
  tree.AddChild(0, 0.3, {{0.0, 0.5, 0.5}, {0.0, 1.0}}, 3.0);
  tree.AddChild(c1, 1.0, {{1.0, 0.0, 0.0}, {1.0, 0.0}}, 2.0);
  tree.mutable_node(c1).rho_background = 0.1;
  return tree;
}

// Mirrors the on-disk v2 envelope so tests can frame hand-crafted payloads
// with a VALID length and checksum — proving the body validation itself
// rejects them, not just the framing.
uint64_t TestFnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string FrameV2(const std::string& payload) {
  char hex[20];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(TestFnv1a64(payload)));
  return "latent-hierarchy-v2 " + std::to_string(payload.size()) + " " + hex +
         "\n" + payload;
}

TEST(SerializeHardeningTest, RoundTripPreservesPartialFlag) {
  core::TopicHierarchy tree = SmallTree();
  tree.set_partial(true);
  auto restored = core::DeserializeHierarchy(core::SerializeHierarchy(tree));
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_TRUE(restored.value().partial());
  EXPECT_EQ(restored.value().num_nodes(), tree.num_nodes());

  tree.set_partial(false);
  auto complete = core::DeserializeHierarchy(core::SerializeHierarchy(tree));
  ASSERT_TRUE(complete.ok());
  EXPECT_FALSE(complete.value().partial());
}

TEST(SerializeHardeningTest, EveryTruncationIsRejected) {
  const std::string blob = core::SerializeHierarchy(SmallTree());
  ASSERT_TRUE(core::DeserializeHierarchy(blob).ok());
  // Every strict prefix — cutting inside the header, at any field
  // boundary, or mid-number — must fail cleanly: the declared byte length
  // never matches a shortened payload.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(core::DeserializeHierarchy(blob.substr(0, len)).ok())
        << "prefix of length " << len << " was accepted";
  }
}

TEST(SerializeHardeningTest, EveryByteFlipIsRejected) {
  const std::string blob = core::SerializeHierarchy(SmallTree());
  for (size_t i = 0; i < blob.size(); ++i) {
    std::string corrupt = blob;
    corrupt[i] ^= 0x01;
    EXPECT_FALSE(core::DeserializeHierarchy(corrupt).ok())
        << "flip at byte " << i << " was accepted";
  }
}

TEST(SerializeHardeningTest, AbsurdDeclaredSizesAreRejectedUpFront) {
  auto expect_invalid = [](const std::string& payload, const char* what) {
    auto r = core::DeserializeHierarchy(FrameV2(payload));
    EXPECT_FALSE(r.ok()) << what;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << what;
    }
  };
  // Huge type count (over the 2^16 cap).
  expect_invalid("999999999\n", "type count");
  // One type whose declared universe exceeds the 2^28 cap.
  expect_invalid("1\nterm 999999999\n0\npartial 0\n", "universe size");
  // Negative universe size.
  expect_invalid("1\nterm -5\n0\npartial 0\n", "negative size");
  // Huge node count.
  expect_invalid("1\nterm 3\n999999999\npartial 0\n", "node count");
  // nodes x universe over the total-phi cap even though each is in range.
  expect_invalid("1\nterm 100000000\n100\npartial 0\n", "total phi");
  // Negative / oversized phi nnz counts.
  expect_invalid("1\nterm 3\n1\n-1 0.5 0.0 1.0\n-2\npartial 0\n",
                 "negative nnz");
  expect_invalid("1\nterm 3\n1\n-1 0.5 0.0 1.0\n7 0 1.0\npartial 0\n",
                 "nnz over size");
  // Phi index outside the declared universe.
  expect_invalid("1\nterm 3\n1\n-1 0.5 0.0 1.0\n1 9 1.0\npartial 0\n",
                 "phi index");
  // Two parentless nodes (a second root).
  expect_invalid(
      "1\nterm 2\n2\n-1 0.5 0.0 1.0\n0\n-1 0.5 0.0 1.0\n0\npartial 0\n",
      "multiple roots");
  // First node is not the root.
  expect_invalid("1\nterm 2\n1\n0 0.5 0.0 1.0\n0\npartial 0\n",
                 "first node not root");
  // Parent id referencing a node that does not exist yet.
  expect_invalid(
      "1\nterm 2\n2\n-1 0.5 0.0 1.0\n0\n5 0.5 0.0 1.0\n0\npartial 0\n",
      "forward parent");
  // Garbage / missing partial trailer.
  expect_invalid("1\nterm 2\n1\n-1 0.5 0.0 1.0\n0\n", "missing trailer");
  expect_invalid("1\nterm 2\n1\n-1 0.5 0.0 1.0\n0\npartial 7\n",
                 "bad trailer flag");
}

TEST(SerializeHardeningTest, EmbeddedNulAndBadMagicAreRejected) {
  EXPECT_FALSE(core::DeserializeHierarchy("garbage").ok());
  EXPECT_FALSE(core::DeserializeHierarchy("").ok());
  std::string with_nul = core::SerializeHierarchy(SmallTree());
  with_nul[with_nul.size() / 2] = '\0';
  EXPECT_FALSE(core::DeserializeHierarchy(with_nul).ok());
}

TEST(SerializeHardeningTest, LegacyV1BlobStillParses) {
  // v1 = the bare body with no envelope and no partial trailer.
  core::TopicHierarchy tree = SmallTree();
  std::string v2 = core::SerializeHierarchy(tree);
  std::string payload = v2.substr(v2.find('\n') + 1);
  const std::string trailer = "partial 0\n";
  ASSERT_EQ(payload.substr(payload.size() - trailer.size()), trailer);
  payload.resize(payload.size() - trailer.size());
  auto restored =
      core::DeserializeHierarchy("latent-hierarchy-v1\n" + payload);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored.value().num_nodes(), tree.num_nodes());
  EXPECT_FALSE(restored.value().partial());
}

using DeserializeFaultTest = FailpointTest;

TEST_F(DeserializeFaultTest, InjectedAllocationFailureIsResourceExhausted) {
  const std::string blob = core::SerializeHierarchy(SmallTree());
  run::failpoint::Arm("deserialize.alloc", /*count=*/1);
  auto r = core::DeserializeHierarchy(blob);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // And the very next parse works.
  EXPECT_TRUE(core::DeserializeHierarchy(blob).ok());
}

// ---------------------------------------------------------------------------
// Checkpoint fault injection: injected snapshot/manifest/read failures
// (ckpt.write, ckpt.manifest, ckpt.read) plus hand-crafted torn, stale,
// and corrupt checkpoint state. The invariant under every fault: the mined
// tree is never wrong — the worst case is recomputation plus a warning.
// ---------------------------------------------------------------------------

std::string FreshCkptDir(const std::string& name) {
  const std::string dir = TempPath(name);
  ::system(("rm -rf " + dir).c_str());
  return dir;
}

api::PipelineOptions CkptOptions(const std::string& dir, bool resume = false) {
  api::PipelineOptions opt = SmallOptions();
  opt.checkpoint_dir = dir;
  opt.checkpoint_every_nodes = 1;
  opt.resume = resume;
  return opt;
}

std::string MineTreeBytes(const data::HinDataset& ds,
                          const api::PipelineOptions& opt,
                          std::string* warning = nullptr) {
  api::PipelineInput input(
      ds.corpus, api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  StatusOr<api::MinedHierarchy> result = api::Mine(input, opt);
  EXPECT_TRUE(result.ok()) << result.status().message();
  if (!result.ok()) return "";
  if (warning != nullptr) *warning = result.value().checkpoint_warning();
  return core::SerializeHierarchy(result.value().tree());
}

using CkptFaultTest = FailpointTest;

TEST_F(CkptFaultTest, SnapshotWriteFailureDegradesToUncheckpointedRun) {
  data::HinDataset ds = SmallDs();
  const std::string want = MineTreeBytes(ds, SmallOptions());

  const std::string dir = FreshCkptDir("ckpt_fault_write");
  api::PipelineOptions opt = CkptOptions(dir);
  run::failpoint::Arm("ckpt.write");  // every snapshot write fails, retries too
  std::string warning;
  const std::string got = MineTreeBytes(ds, opt, &warning);
  // Retries really happened before degrading (initial try + 3 retries).
  // Read the counter BEFORE disarming — Disarm resets hit counts.
  EXPECT_GE(run::failpoint::HitCount("ckpt.write"), 4);
  run::failpoint::DisarmAll();

  EXPECT_EQ(got, want);  // the run itself is untouched
  EXPECT_NE(warning.find("checkpointing disabled"), std::string::npos)
      << warning;
  // Nothing durable appeared, so a resume is a clean (still correct) start.
  EXPECT_FALSE(data::ReadFile(dir + "/MANIFEST").ok());
  EXPECT_EQ(MineTreeBytes(ds, CkptOptions(dir, /*resume=*/true)), want);
}

TEST_F(CkptFaultTest, ManifestWriteFailureDegradesToUncheckpointedRun) {
  data::HinDataset ds = SmallDs();
  const std::string want = MineTreeBytes(ds, SmallOptions());

  const std::string dir = FreshCkptDir("ckpt_fault_manifest");
  run::failpoint::Arm("ckpt.manifest");
  std::string warning;
  const std::string got = MineTreeBytes(ds, CkptOptions(dir), &warning);
  run::failpoint::DisarmAll();

  EXPECT_EQ(got, want);
  EXPECT_NE(warning.find("checkpointing disabled"), std::string::npos);
  // The orphaned snapshot file is harmless: without a manifest the resume
  // path sees nothing and cleanly recomputes the same tree.
  EXPECT_FALSE(data::ReadFile(dir + "/MANIFEST").ok());
  EXPECT_EQ(MineTreeBytes(ds, CkptOptions(dir, /*resume=*/true)), want);
}

TEST_F(CkptFaultTest, UnreadableNewestSnapshotFallsBackToPreviousGeneration) {
  data::HinDataset ds = SmallDs();
  const std::string dir = FreshCkptDir("ckpt_fault_read");
  const std::string want = MineTreeBytes(ds, CkptOptions(dir));

  // The newest generation's read fails once; Load() must fall back to the
  // previous generation and the resumed run must still match bit for bit.
  run::failpoint::Arm("ckpt.read", /*count=*/1);
  std::string warning;
  const std::string got =
      MineTreeBytes(ds, CkptOptions(dir, /*resume=*/true), &warning);
  run::failpoint::DisarmAll();
  EXPECT_EQ(got, want);
  EXPECT_NE(warning.find("unreadable"), std::string::npos) << warning;
  EXPECT_NE(warning.find("falling back"), std::string::npos) << warning;
}

// The crafted-state tests below need no fail points — they damage real
// files — so they run in every build configuration.

core::ClusterResult CkptFit(uint64_t seed_used) {
  core::ClusterResult m;
  m.k = 2;
  m.background = false;
  m.log_likelihood = -1.5;
  m.bic_score = -2.5;
  m.rho = {0.75, 0.25};
  m.phi = {{{0.5, 0.5, 0.0}, {1.0, 0.0}}, {{0.0, 0.0, 1.0}, {0.0, 1.0}}};
  m.alpha = {1.0};
  m.seed_used = seed_used;
  return m;
}

ckpt::CheckpointOptions CkptDirOptions(const std::string& dir) {
  ckpt::CheckpointOptions opt;
  opt.dir = dir;
  opt.fingerprint = 0xfeed;
  opt.retry.max_attempts = 1;
  return opt;
}

TEST(CkptCraftedFaultTest, TornSnapshotFallsBackToPreviousGeneration) {
  const std::string dir = FreshCkptDir("ckpt_torn");
  const std::vector<int> sizes = {3, 2};
  ckpt::Checkpointer writer(CkptDirOptions(dir), sizes);
  writer.Record("o", 0, CkptFit(1));
  ASSERT_TRUE(writer.Flush().ok());  // generation 1
  writer.Record("o/1", 1, CkptFit(2));
  ASSERT_TRUE(writer.Flush().ok());  // generation 2

  // Tear generation 2: drop its tail, as a crashed non-atomic writer would.
  auto blob = data::ReadFile(dir + "/ckpt-2.ckpt");
  ASSERT_TRUE(blob.ok());
  ASSERT_TRUE(data::WriteFile(dir + "/ckpt-2.ckpt",
                              blob.value().substr(0, blob.value().size() - 10))
                  .ok());

  ckpt::Checkpointer reader(CkptDirOptions(dir), sizes);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_generation(), 1);
  EXPECT_EQ(reader.resumed_fits(), 1);
  EXPECT_NE(reader.warning().find("torn"), std::string::npos)
      << reader.warning();
}

TEST(CkptCraftedFaultTest, StaleGenerationIsRejectedByEmbeddedGeneration) {
  const std::string dir = FreshCkptDir("ckpt_stale");
  const std::vector<int> sizes = {3, 2};
  ckpt::Checkpointer writer(CkptDirOptions(dir), sizes);
  writer.Record("o", 0, CkptFit(1));
  ASSERT_TRUE(writer.Flush().ok());  // generation 1

  // Forge a "generation 7" manifest entry pointing at a byte-for-byte copy
  // of generation 1 (correct length AND checksum, so only the embedded
  // generation number can expose the lie).
  auto snap = data::ReadFile(dir + "/ckpt-1.ckpt");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(data::WriteFile(dir + "/ckpt-7.ckpt", snap.value()).ok());
  auto manifest = data::ReadFile(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.ok());
  std::string forged = manifest.value();
  const std::string gen1_line = forged.substr(forged.find('\n') + 1);
  const std::string prefix = "1 ckpt-1.ckpt ";
  ASSERT_EQ(gen1_line.substr(0, prefix.size()), prefix);
  forged += "7 ckpt-7.ckpt " + gen1_line.substr(prefix.size());
  ASSERT_TRUE(data::WriteFile(dir + "/MANIFEST", forged).ok());

  ckpt::Checkpointer reader(CkptDirOptions(dir), sizes);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_generation(), 1);  // fell past the stale entry
  EXPECT_NE(reader.warning().find("stale"), std::string::npos)
      << reader.warning();
}

TEST(CkptCraftedFaultTest, CorruptManifestMeansCleanRestart) {
  const std::string dir = FreshCkptDir("ckpt_badmanifest");
  const std::vector<int> sizes = {3, 2};
  ckpt::Checkpointer writer(CkptDirOptions(dir), sizes);
  writer.Record("o", 0, CkptFit(1));
  ASSERT_TRUE(writer.Flush().ok());

  ASSERT_TRUE(data::WriteFile(dir + "/MANIFEST", "not a manifest at all").ok());
  ckpt::Checkpointer reader(CkptDirOptions(dir), sizes);
  ASSERT_TRUE(reader.Load().ok());  // degraded, not an error
  EXPECT_EQ(reader.resumed_generation(), 0);
  EXPECT_EQ(reader.resumed_fits(), 0);
  EXPECT_NE(reader.warning().find("corrupt checkpoint manifest"),
            std::string::npos);
}

TEST(CkptCraftedFaultTest, ManifestPathTraversalIsRejected) {
  const std::string dir = FreshCkptDir("ckpt_traversal");
  const std::vector<int> sizes = {3, 2};
  ckpt::Checkpointer writer(CkptDirOptions(dir), sizes);
  writer.Record("o", 0, CkptFit(1));
  ASSERT_TRUE(writer.Flush().ok());

  // A manifest naming a file outside the checkpoint dir must be refused
  // wholesale (clean restart), never dereferenced.
  ASSERT_TRUE(data::WriteFile(
                  dir + "/MANIFEST",
                  "latent-ckpt-manifest-v1 000000000000feed\n"
                  "1 ../../etc/passwd 10 0123456789abcdef\n")
                  .ok());
  ckpt::Checkpointer reader(CkptDirOptions(dir), sizes);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_generation(), 0);
  EXPECT_NE(reader.warning().find("corrupt checkpoint manifest entry"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Loader hardening: malformed real-world input files.
// ---------------------------------------------------------------------------

class LoaderHardeningTest : public ::testing::Test {
 protected:
  std::string WriteTemp(const std::string& name, const std::string& content) {
    const std::string path = TempPath(name);
    EXPECT_TRUE(data::WriteFile(path, content).ok());
    return path;
  }
};

TEST_F(LoaderHardeningTest, ValidTsvLoadsAndSkipsComments) {
  const std::string path = WriteTemp(
      "loader_ok.tsv",
      "# comment line\n0\tauthor\tknuth\n1\tauthor\tlamport\n"
      "1\tvenue\tsigmod\n");
  auto loaded = data::LoadEntityAttachments(path, 2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().type_names.size(), 2u);
  EXPECT_EQ(loaded.value().entity_docs.size(), 2u);
}

TEST_F(LoaderHardeningTest, MissingFieldNamesTheLine) {
  const std::string path =
      WriteTemp("loader_missing.tsv", "0\tauthor\tknuth\n1\tauthor\n");
  auto loaded = data::LoadEntityAttachments(path, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST_F(LoaderHardeningTest, EmptyFieldIsRejected) {
  const std::string path =
      WriteTemp("loader_empty.tsv", "0\t\tknuth\n");
  auto loaded = data::LoadEntityAttachments(path, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
}

TEST_F(LoaderHardeningTest, NonNumericDocIndexIsRejected) {
  const std::string path =
      WriteTemp("loader_nonnum.tsv", "12abc\tauthor\tknuth\n");
  auto loaded = data::LoadEntityAttachments(path, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("12abc"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
}

TEST_F(LoaderHardeningTest, OutOfRangeDocIndexIsRejected) {
  const std::string path = WriteTemp(
      "loader_range.tsv", "0\tauthor\tknuth\n7\tauthor\tlamport\n");
  auto loaded = data::LoadEntityAttachments(path, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("out of range"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);

  const std::string neg =
      WriteTemp("loader_negative.tsv", "-3\tauthor\tknuth\n");
  EXPECT_FALSE(data::LoadEntityAttachments(neg, 2).ok());
}

TEST_F(LoaderHardeningTest, HugeDocIndexDoesNotOverflow) {
  const std::string path = WriteTemp(
      "loader_huge.tsv", "99999999999999999999\tauthor\tknuth\n");
  auto loaded = data::LoadEntityAttachments(path, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LoaderHardeningTest, EmbeddedNulByteIsRejectedWithLineNumber) {
  std::string content = "0\tauthor\tknuth\n1\tauthor\tla";
  content.push_back('\0');
  content += "mport\n";
  const std::string path = WriteTemp("loader_nul.tsv", content);
  auto loaded = data::LoadEntityAttachments(path, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("NUL"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);

  const std::string corpus_path = WriteTemp("corpus_nul.txt", content);
  text::TokenizeOptions topt;
  EXPECT_FALSE(data::LoadCorpusFromFile(corpus_path, topt).ok());
}

TEST_F(LoaderHardeningTest, OverlongLineIsRejected) {
  std::string content = "short line\n";
  content += std::string((1 << 20) + 1, 'a');
  content += "\n";
  const std::string path = WriteTemp("corpus_long.txt", content);
  text::TokenizeOptions topt;
  auto loaded = data::LoadCorpusFromFile(path, topt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace latent
