// Checkpoint/resume subsystem: the Checkpointer's durable round trip, the
// newest-valid-generation resume contract, fingerprint gating, retention
// pruning, and the end-to-end guarantee that a run interrupted by its work
// budget and then resumed produces a byte-identical tree to an
// uninterrupted run — at any thread count.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/latent.h"
#include "ckpt/checkpoint.h"
#include "core/serialize.h"
#include "data/io.h"
#include "data/synthetic_hin.h"

namespace latent {
namespace {

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  // Start every test from an empty directory: remove any snapshot files a
  // previous run of the same test left behind.
  ::system(("rm -rf " + dir).c_str());
  return dir;
}

// ---------------------------------------------------------------------------
// Checksum primitive.
// ---------------------------------------------------------------------------

TEST(Fnv1a64Test, MatchesTheRepoWideChecksumConvention) {
  // The empty-string hash is the offset basis used across the repo (the
  // v2 hierarchy envelope in core/serialize.cc uses the same constant);
  // snapshots checksummed by one layer must verify in the other.
  EXPECT_EQ(ckpt::Fnv1a64(""), 1469598103934665603ULL);
  // Deterministic, and sensitive to every byte.
  EXPECT_EQ(ckpt::Fnv1a64("checkpoint"), ckpt::Fnv1a64("checkpoint"));
  EXPECT_NE(ckpt::Fnv1a64("checkpoint"), ckpt::Fnv1a64("checkpoinT"));
  EXPECT_NE(ckpt::Fnv1a64("ab"), ckpt::Fnv1a64("ba"));
  // Embedded NUL bytes count too.
  EXPECT_NE(ckpt::Fnv1a64(std::string("a")), ckpt::Fnv1a64(std::string("a\0", 2)));
}

// ---------------------------------------------------------------------------
// Checkpointer unit tests on hand-crafted fits.
// ---------------------------------------------------------------------------

core::ClusterResult MakeFit(uint64_t seed_used) {
  core::ClusterResult m;
  m.k = 2;
  m.background = true;
  m.log_likelihood = -123.0 / 7.0;  // not exactly representable in decimal
  m.bic_score = -456.0 / 11.0;
  m.rho = {2.0 / 3.0, 1.0 / 3.0};
  m.rho_bg = 1.0 / 9.0;
  m.phi = {{{0.5, 0.25, 0.25}, {1.0 / 7.0, 6.0 / 7.0}},
           {{0.0, 1.0 / 3.0, 2.0 / 3.0}, {0.0, 1.0}}};
  m.phi_bg = {{1.0 / 13.0, 0.0, 12.0 / 13.0}, {0.5, 0.5}};
  m.alpha = {1.0, 1.0 / 17.0, 0.25};
  m.backend = core::FitBackend::kSpectral;
  m.dirichlet_alpha = {0.4, 1.0 / 3.0};
  m.parent_phi = {{0.9, 0.1, 0.0}, {1.0, 0.0}};  // dropped by Record
  m.seed_used = seed_used;
  return m;
}

void ExpectFitEq(const core::ClusterResult& a, const core::ClusterResult& b) {
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.background, b.background);
  EXPECT_EQ(a.log_likelihood, b.log_likelihood);  // bit-exact, not near
  EXPECT_EQ(a.bic_score, b.bic_score);
  EXPECT_EQ(a.rho, b.rho);
  EXPECT_EQ(a.rho_bg, b.rho_bg);
  EXPECT_EQ(a.phi, b.phi);
  EXPECT_EQ(a.phi_bg, b.phi_bg);
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.backend, b.backend);
  EXPECT_EQ(a.dirichlet_alpha, b.dirichlet_alpha);
  EXPECT_EQ(a.seed_used, b.seed_used);
}

ckpt::CheckpointOptions DirOptions(const std::string& dir,
                                   uint64_t fingerprint = 0x1234) {
  ckpt::CheckpointOptions opt;
  opt.dir = dir;
  opt.fingerprint = fingerprint;
  opt.retry.max_attempts = 1;  // unit tests never want backoff sleeps
  return opt;
}

TEST(CheckpointerTest, RecordFlushLoadRoundTripIsBitExact) {
  const std::string dir = TempDirFor("ckpt_roundtrip");
  const std::vector<int> sizes = {3, 2};

  ckpt::Checkpointer writer(DirOptions(dir), sizes);
  writer.Record("o", 0, MakeFit(101));
  writer.Record("o/1", 1, MakeFit(202));
  ASSERT_TRUE(writer.Flush().ok());

  ckpt::Checkpointer reader(DirOptions(dir), sizes);
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_generation(), 1);
  EXPECT_EQ(reader.resumed_fits(), 2);
  EXPECT_TRUE(reader.warning().empty()) << reader.warning();

  core::ClusterResult got;
  ASSERT_TRUE(reader.Lookup("o", &got));
  ExpectFitEq(got, MakeFit(101));
  EXPECT_TRUE(got.parent_phi.empty());  // reinstated by the builder, not us
  ASSERT_TRUE(reader.Lookup("o/1", &got));
  ExpectFitEq(got, MakeFit(202));
  EXPECT_FALSE(reader.Lookup("o/2", &got));
  EXPECT_EQ(reader.hits(), 2);
}

TEST(CheckpointerTest, LoadFromEmptyDirIsACleanStart) {
  const std::string dir = TempDirFor("ckpt_empty");
  ckpt::Checkpointer reader(DirOptions(dir), {3, 2});
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_generation(), 0);
  EXPECT_EQ(reader.resumed_fits(), 0);
  EXPECT_TRUE(reader.warning().empty());
}

TEST(CheckpointerTest, FingerprintMismatchDegradesToCleanRestart) {
  const std::string dir = TempDirFor("ckpt_fp");
  ckpt::Checkpointer writer(DirOptions(dir, /*fingerprint=*/1), {3, 2});
  writer.Record("o", 0, MakeFit(7));
  ASSERT_TRUE(writer.Flush().ok());

  ckpt::Checkpointer reader(DirOptions(dir, /*fingerprint=*/2), {3, 2});
  ASSERT_TRUE(reader.Load().ok());  // not an error — just nothing usable
  EXPECT_EQ(reader.resumed_generation(), 0);
  EXPECT_EQ(reader.resumed_fits(), 0);
  EXPECT_NE(reader.warning().find("fingerprint"), std::string::npos);
}

TEST(CheckpointerTest, TypeSizeMismatchRejectsTheSnapshot) {
  const std::string dir = TempDirFor("ckpt_sizes");
  ckpt::Checkpointer writer(DirOptions(dir), {3, 2});
  writer.Record("o", 0, MakeFit(7));
  ASSERT_TRUE(writer.Flush().ok());

  // Same fingerprint, different node universes: the snapshot's phi rows no
  // longer mean anything. Parse fails, Load degrades to a clean restart.
  ckpt::Checkpointer reader(DirOptions(dir), {4, 2});
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_fits(), 0);
  EXPECT_FALSE(reader.warning().empty());
}

TEST(CheckpointerTest, RetentionPrunesOldGenerations) {
  const std::string dir = TempDirFor("ckpt_retention");
  ckpt::CheckpointOptions opt = DirOptions(dir);
  opt.keep_generations = 2;
  ckpt::Checkpointer writer(opt, {3, 2});
  for (int g = 1; g <= 5; ++g) {
    writer.Record("o/" + std::to_string(g), 1, MakeFit(g));
    ASSERT_TRUE(writer.Flush().ok());
  }
  // Generations 1..3 were pruned; 4 and 5 remain and 5 is the one resumed.
  struct ::stat st;
  EXPECT_NE(::stat((dir + "/ckpt-1.ckpt").c_str(), &st), 0);
  EXPECT_NE(::stat((dir + "/ckpt-3.ckpt").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/ckpt-4.ckpt").c_str(), &st), 0);
  EXPECT_EQ(::stat((dir + "/ckpt-5.ckpt").c_str(), &st), 0);

  ckpt::Checkpointer reader(opt, {3, 2});
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_generation(), 5);
  EXPECT_EQ(reader.resumed_fits(), 5);  // snapshots accumulate all fits
}

TEST(CheckpointerTest, ResumedFitsSurviveTheNextCrash) {
  const std::string dir = TempDirFor("ckpt_inherit");
  ckpt::Checkpointer first(DirOptions(dir), {3, 2});
  first.Record("o", 0, MakeFit(1));
  ASSERT_TRUE(first.Flush().ok());

  // Second run resumes, records one more fit, snapshots, and "crashes".
  ckpt::Checkpointer second(DirOptions(dir), {3, 2});
  ASSERT_TRUE(second.Load().ok());
  second.Record("o/1", 1, MakeFit(2));
  ASSERT_TRUE(second.Flush().ok());

  // Third run must see BOTH fits — the inherited one was re-snapshotted.
  ckpt::Checkpointer third(DirOptions(dir), {3, 2});
  ASSERT_TRUE(third.Load().ok());
  EXPECT_EQ(third.resumed_fits(), 2);
  core::ClusterResult got;
  EXPECT_TRUE(third.Lookup("o", &got));
  EXPECT_TRUE(third.Lookup("o/1", &got));
}

TEST(CheckpointerTest, CorruptNewestGenerationFallsBackToPrevious) {
  const std::string dir = TempDirFor("ckpt_fallback");
  ckpt::Checkpointer writer(DirOptions(dir), {3, 2});
  writer.Record("o", 0, MakeFit(1));
  ASSERT_TRUE(writer.Flush().ok());  // generation 1: just "o"
  writer.Record("o/1", 1, MakeFit(2));
  ASSERT_TRUE(writer.Flush().ok());  // generation 2: "o" + "o/1"

  // Flip one payload byte of generation 2 (past the header line).
  auto blob = data::ReadFile(dir + "/ckpt-2.ckpt");
  ASSERT_TRUE(blob.ok());
  std::string corrupt = blob.value();
  corrupt[corrupt.find('\n') + corrupt.size() / 2] ^= 0x01;
  ASSERT_TRUE(data::WriteFile(dir + "/ckpt-2.ckpt", corrupt).ok());

  ckpt::Checkpointer reader(DirOptions(dir), {3, 2});
  ASSERT_TRUE(reader.Load().ok());
  EXPECT_EQ(reader.resumed_generation(), 1);  // fell back
  EXPECT_EQ(reader.resumed_fits(), 1);
  EXPECT_NE(reader.warning().find("falling back"), std::string::npos);
  // The next flush must not clobber generation 2's slot with a lower id.
  reader.Record("o/2", 1, MakeFit(3));
  ASSERT_TRUE(reader.Flush().ok());
  ckpt::Checkpointer again(DirOptions(dir), {3, 2});
  ASSERT_TRUE(again.Load().ok());
  EXPECT_EQ(again.resumed_generation(), 3);
  EXPECT_EQ(again.resumed_fits(), 2);
}

// ---------------------------------------------------------------------------
// End-to-end: interrupted pipeline runs resume to byte-identical trees.
// ---------------------------------------------------------------------------

data::HinDataset SmallDs() {
  data::HinDatasetOptions opt = data::DblpLikeOptions(800, 55);
  opt.num_areas = 3;
  opt.subareas_per_area = 2;
  return data::GenerateHinDataset(opt);
}

api::PipelineOptions SmallOptions(int num_threads = 1) {
  api::PipelineOptions opt;
  opt.build.levels_k = {3, 2};
  opt.build.max_depth = 2;
  opt.build.cluster.restarts = 2;
  opt.build.cluster.max_iters = 50;
  opt.build.cluster.seed = 7;
  opt.miner.min_support = 4;
  opt.exec.num_threads = num_threads;
  return opt;
}

api::PipelineInput MakeInput(const data::HinDataset& ds) {
  return api::PipelineInput(
      ds.corpus, api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
}

std::string TreeBytes(const api::MinedHierarchy& mined) {
  return core::SerializeHierarchy(mined.tree());
}

class ResumeTest : public ::testing::TestWithParam<int> {};

TEST_P(ResumeTest, BudgetInterruptedRunResumesBitIdentical) {
  const int threads = GetParam();
  const std::string dir =
      TempDirFor("ckpt_resume_t" + std::to_string(threads));
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);

  // Reference: one uninterrupted, un-checkpointed run.
  StatusOr<api::MinedHierarchy> ref = api::Mine(input, SmallOptions(threads));
  ASSERT_TRUE(ref.ok()) << ref.status().message();
  const std::string want = TreeBytes(ref.value());

  // Interrupted run: stop mid-build on a small work budget, snapshotting
  // every completed fit. The budget is sized to land between "root fit
  // done" and "whole tree done" — but the resume contract below holds
  // wherever it lands.
  api::PipelineOptions stopped = SmallOptions(threads);
  stopped.checkpoint_dir = dir;
  stopped.checkpoint_every_nodes = 1;
  stopped.work_budget = 150;
  StatusOr<api::MinedHierarchy> partial = api::Mine(input, stopped);
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  EXPECT_TRUE(partial.value().partial());

  // Resume without the budget: must complete to the reference tree.
  api::PipelineOptions resumed = SmallOptions(threads);
  resumed.checkpoint_dir = dir;
  resumed.checkpoint_every_nodes = 1;
  resumed.resume = true;
  StatusOr<api::MinedHierarchy> full = api::Mine(input, resumed);
  ASSERT_TRUE(full.ok()) << full.status().message();
  EXPECT_FALSE(full.value().partial());
  EXPECT_TRUE(full.value().checkpoint_warning().empty())
      << full.value().checkpoint_warning();
  EXPECT_EQ(TreeBytes(full.value()), want);
}

TEST_P(ResumeTest, ResumeFromACompleteRunReplaysBitIdentical) {
  const int threads = GetParam();
  const std::string dir =
      TempDirFor("ckpt_replay_t" + std::to_string(threads));
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);

  api::PipelineOptions opt = SmallOptions(threads);
  opt.checkpoint_dir = dir;
  StatusOr<api::MinedHierarchy> first = api::Mine(input, opt);
  ASSERT_TRUE(first.ok()) << first.status().message();

  opt.resume = true;
  StatusOr<api::MinedHierarchy> second = api::Mine(input, opt);
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(TreeBytes(second.value()), TreeBytes(first.value()));
}

INSTANTIATE_TEST_SUITE_P(Threads, ResumeTest, ::testing::Values(1, 8));

TEST(ResumeOptionsTest, ChangedSeedInvalidatesTheCheckpoint) {
  const std::string dir = TempDirFor("ckpt_seedchange");
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);

  api::PipelineOptions opt = SmallOptions(1);
  opt.checkpoint_dir = dir;
  ASSERT_TRUE(api::Mine(input, opt).ok());

  // Same dir, different clustering seed: the fingerprint differs, so the
  // resumed run must ignore the snapshot and match a scratch run at the
  // NEW seed.
  api::PipelineOptions changed = SmallOptions(1);
  changed.build.cluster.seed = 8;
  StatusOr<api::MinedHierarchy> scratch = api::Mine(input, changed);
  ASSERT_TRUE(scratch.ok());

  changed.checkpoint_dir = dir;
  changed.resume = true;
  StatusOr<api::MinedHierarchy> resumed = api::Mine(input, changed);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(TreeBytes(resumed.value()), TreeBytes(scratch.value()));
  EXPECT_NE(resumed.value().checkpoint_warning().find("fingerprint"),
            std::string::npos)
      << resumed.value().checkpoint_warning();
}

TEST(ResumeOptionsTest, CorruptNewestSnapshotStillResumesIdentically) {
  const std::string dir = TempDirFor("ckpt_e2e_fallback");
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);

  api::PipelineOptions opt = SmallOptions(1);
  opt.checkpoint_dir = dir;
  opt.checkpoint_every_nodes = 1;  // many generations on disk
  StatusOr<api::MinedHierarchy> ref = api::Mine(input, opt);
  ASSERT_TRUE(ref.ok());
  const std::string want = TreeBytes(ref.value());

  // Corrupt the newest retained snapshot (highest generation number).
  auto manifest = data::ReadFile(dir + "/MANIFEST");
  ASSERT_TRUE(manifest.ok());
  std::istringstream in(manifest.value());
  std::string magic, fp;
  in >> magic >> fp;
  long long gen = 0, newest = 0;
  std::string file, newest_file;
  size_t bytes = 0;
  std::string checksum;
  while (in >> gen >> file >> bytes >> checksum) {
    if (gen > newest) {
      newest = gen;
      newest_file = file;
    }
  }
  ASSERT_GT(newest, 0);
  auto blob = data::ReadFile(dir + "/" + newest_file);
  ASSERT_TRUE(blob.ok());
  std::string corrupt = blob.value();
  corrupt[corrupt.size() - 2] ^= 0x01;
  ASSERT_TRUE(data::WriteFile(dir + "/" + newest_file, corrupt).ok());

  api::PipelineOptions resumed = SmallOptions(1);
  resumed.checkpoint_dir = dir;
  resumed.resume = true;
  StatusOr<api::MinedHierarchy> again = api::Mine(input, resumed);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(TreeBytes(again.value()), want);
  EXPECT_NE(again.value().checkpoint_warning().find("falling back"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Partial trees through the save/load/resume path (regression: the partial
// trailer must survive a round trip of a budget-stopped tree).
// ---------------------------------------------------------------------------

TEST(PartialRoundTripTest, PartialFlagSurvivesSaveLoadResave) {
  const std::string dir = TempDirFor("ckpt_partial");
  data::HinDataset ds = SmallDs();
  api::PipelineInput input = MakeInput(ds);

  api::PipelineOptions stopped = SmallOptions(1);
  stopped.checkpoint_dir = dir;
  stopped.checkpoint_every_nodes = 1;
  stopped.work_budget = 150;
  StatusOr<api::MinedHierarchy> partial = api::Mine(input, stopped);
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  ASSERT_TRUE(partial.value().partial());

  // partial -> save -> load -> partial, twice (save of a LOADED partial
  // tree must re-emit the trailer, not drop it).
  const std::string path = ::testing::TempDir() + "/ckpt_partial_tree.bin";
  ASSERT_TRUE(
      data::WriteFile(path, TreeBytes(partial.value())).ok());
  auto blob = data::ReadFile(path);
  ASSERT_TRUE(blob.ok());
  auto loaded = core::DeserializeHierarchy(blob.value());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded.value().partial());
  auto reloaded =
      core::DeserializeHierarchy(core::SerializeHierarchy(loaded.value()));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded.value().partial());
  EXPECT_EQ(reloaded.value().num_nodes(), partial.value().tree().num_nodes());
}

}  // namespace
}  // namespace latent
