// End-to-end determinism of the parallel execution layer: api::Mine with
// deterministic=true must produce bit-identical hierarchies, phi vectors,
// phrase dictionaries, and KERT rankings for every num_threads setting
// (the ISSUE's contract: {1, 2, 8} all agree).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "api/latent.h"
#include "data/synthetic_hin.h"

namespace latent::api {
namespace {

data::HinDataset SmallDs() {
  data::HinDatasetOptions opt = data::DblpLikeOptions(800, 55);
  opt.num_areas = 3;
  opt.subareas_per_area = 2;
  return data::GenerateHinDataset(opt);
}

PipelineOptions OptionsWithThreads(int num_threads) {
  PipelineOptions opt;
  opt.build.levels_k = {3, 2};
  opt.build.max_depth = 2;
  opt.build.cluster.restarts = 2;
  opt.build.cluster.max_iters = 50;
  opt.build.cluster.seed = 7;
  opt.miner.min_support = 4;
  opt.exec.num_threads = num_threads;
  opt.exec.deterministic = true;
  return opt;
}

// Bitwise comparison of two mined results. EXPECT_EQ on doubles is exact
// (no tolerance) — that is the point.
void ExpectIdentical(const MinedHierarchy& a, const MinedHierarchy& b,
                     const data::HinDataset& ds) {
  ASSERT_EQ(a.tree().num_nodes(), b.tree().num_nodes());
  for (int id = 0; id < a.tree().num_nodes(); ++id) {
    const core::TopicNode& na = a.tree().node(id);
    const core::TopicNode& nb = b.tree().node(id);
    EXPECT_EQ(na.path, nb.path) << id;
    EXPECT_EQ(na.parent, nb.parent) << id;
    EXPECT_EQ(na.children, nb.children) << id;
    EXPECT_EQ(na.rho_in_parent, nb.rho_in_parent) << id;
    EXPECT_EQ(na.rho_background, nb.rho_background) << id;
    ASSERT_EQ(na.phi.size(), nb.phi.size()) << id;
    for (size_t x = 0; x < na.phi.size(); ++x) {
      ASSERT_EQ(na.phi[x].size(), nb.phi[x].size()) << id;
      for (size_t i = 0; i < na.phi[x].size(); ++i) {
        EXPECT_EQ(na.phi[x][i], nb.phi[x][i])
            << "node " << id << " type " << x << " entry " << i;
      }
    }
  }

  // Phrase dictionaries: same entries, same ids, same counts.
  ASSERT_EQ(a.dict().size(), b.dict().size());
  for (int p = 0; p < a.dict().size(); ++p) {
    EXPECT_EQ(a.dict().Words(p), b.dict().Words(p)) << p;
    EXPECT_EQ(a.dict().Count(p), b.dict().Count(p)) << p;
  }

  // KERT rankings: same phrases in the same order with identical scores.
  phrase::KertOptions kopt;
  for (int id = 0; id < a.tree().num_nodes(); ++id) {
    if (id == a.tree().root()) continue;
    auto ra = a.TopPhrases(id, kopt, 10);
    auto rb = b.TopPhrases(id, kopt, 10);
    ASSERT_EQ(ra.size(), rb.size()) << id;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(a.dict().ToString(ra[i].first, ds.corpus.vocab()),
                b.dict().ToString(rb[i].first, ds.corpus.vocab()))
          << "node " << id << " rank " << i;
      EXPECT_EQ(ra[i].second, rb[i].second) << "node " << id << " rank " << i;
    }
  }
  // RenderTree exercises RankAllTopics (parallel path when a pool exists).
  EXPECT_EQ(a.RenderTree(kopt, 5), b.RenderTree(kopt, 5));
}

TEST(DeterminismTest, MineIsThreadCountInvariantWithEntities) {
  data::HinDataset ds = SmallDs();
  PipelineInput input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);

  StatusOr<MinedHierarchy> serial = Mine(input, OptionsWithThreads(1));
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  for (int threads : {2, 8}) {
    StatusOr<MinedHierarchy> parallel =
        Mine(input, OptionsWithThreads(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(serial.value(), parallel.value(), ds);
  }
}

TEST(DeterminismTest, MineIsThreadCountInvariantTextOnly) {
  data::HinDataset ds = SmallDs();
  PipelineInput input(ds.corpus);

  StatusOr<MinedHierarchy> serial = Mine(input, OptionsWithThreads(1));
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  StatusOr<MinedHierarchy> parallel = Mine(input, OptionsWithThreads(8));
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  ExpectIdentical(serial.value(), parallel.value(), ds);
}

TEST(DeterminismTest, RepeatedParallelRunsAgree) {
  data::HinDataset ds = SmallDs();
  PipelineInput input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  StatusOr<MinedHierarchy> first = Mine(input, OptionsWithThreads(4));
  StatusOr<MinedHierarchy> second = Mine(input, OptionsWithThreads(4));
  ASSERT_TRUE(first.ok() && second.ok());
  ExpectIdentical(first.value(), second.value(), ds);
}

TEST(DeterminismTest, MetricsAndProgressDoNotPerturbResults) {
  // The observability contract: attaching a registry and an unthrottled
  // progress callback must leave the mined result bit-identical to a bare
  // run, at every thread count.
  data::HinDataset ds = SmallDs();
  PipelineInput input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  StatusOr<MinedHierarchy> bare = Mine(input, OptionsWithThreads(1));
  ASSERT_TRUE(bare.ok()) << bare.status().message();
  for (int threads : {1, 2, 8}) {
    PipelineOptions opt = OptionsWithThreads(threads);
    obs::Registry registry;
    opt.metrics = &registry;
    std::atomic<uint64_t> progress_calls{0};
    opt.progress = [&progress_calls](const obs::ProgressEvent&) {
      progress_calls.fetch_add(1, std::memory_order_relaxed);
    };
    opt.progress_every_ms = 0;  // unthrottled: maximum observation pressure
    StatusOr<MinedHierarchy> observed = Mine(input, opt);
    ASSERT_TRUE(observed.ok()) << observed.status().message();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(bare.value(), observed.value(), ds);
#if defined(LATENT_OBS_ENABLED)
    EXPECT_GT(registry.CounterValue("em.iterations"), 0u);
    EXPECT_GT(progress_calls.load(), 0u);
#endif
  }
}

TEST(DeterminismTest, SpectralMineIsThreadCountInvariant) {
  // The spectral (STROD) backend derives every fit seed from the node's
  // path, exactly like EM, so --inference spectral must also be
  // bit-identical at any thread count.
  data::HinDataset ds = SmallDs();
  PipelineInput input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  auto spectral_opt = [](int threads) {
    PipelineOptions opt = OptionsWithThreads(threads);
    opt.inference.backend = core::InferenceBackendKind::kSpectral;
    opt.inference.spectral.min_docs = 4;
    return opt;
  };
  StatusOr<MinedHierarchy> serial = Mine(input, spectral_opt(1));
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  for (int threads : {2, 8}) {
    StatusOr<MinedHierarchy> parallel = Mine(input, spectral_opt(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(serial.value(), parallel.value(), ds);
  }
}

TEST(DeterminismTest, AutoBackendIsThreadCountInvariant) {
  // kAuto chooses the backend from each node's usable-document count — a
  // thread-count-independent quantity — so mixed trees must agree too.
  data::HinDataset ds = SmallDs();
  PipelineInput input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  auto auto_opt = [](int threads) {
    PipelineOptions opt = OptionsWithThreads(threads);
    opt.inference.backend = core::InferenceBackendKind::kAuto;
    opt.inference.auto_min_docs = 64;  // root spectral, small nodes EM
    opt.inference.spectral.min_docs = 4;
    return opt;
  };
  StatusOr<MinedHierarchy> serial = Mine(input, auto_opt(1));
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  StatusOr<MinedHierarchy> parallel = Mine(input, auto_opt(8));
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  ExpectIdentical(serial.value(), parallel.value(), ds);
}

TEST(DeterminismTest, SoAHotPathIsThreadCountInvariantAtLargerK) {
  // Stresses the SoA phi layout and blocked two-phase E-step (PR 9) where
  // its strides actually matter: a wider root (k=6, so multiple z-spans per
  // parallel accumulation pass), background topic on (the extra bg rows of
  // the topic-major blocks), and the learned per-link-type alpha update.
  // Same contract as every case here: {1, 2, 8} threads, identical bits.
  data::HinDataset ds = SmallDs();
  PipelineInput input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  auto wide_opt = [](int threads) {
    PipelineOptions opt = OptionsWithThreads(threads);
    opt.build.levels_k = {6};
    opt.build.max_depth = 1;
    opt.build.cluster.weight_mode = core::LinkWeightMode::kLearned;
    opt.build.cluster.max_iters = 60;
    return opt;
  };
  StatusOr<MinedHierarchy> serial = Mine(input, wide_opt(1));
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  for (int threads : {2, 8}) {
    StatusOr<MinedHierarchy> parallel = Mine(input, wide_opt(threads));
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(serial.value(), parallel.value(), ds);
  }
}

TEST(DeterminismTest, BicModelSelectionIsThreadCountInvariant) {
  // Exercise the SelectAndFit parallel path (levels_k empty -> BIC chooses
  // the branching factor per node).
  data::HinDataset ds = SmallDs();
  PipelineInput input(
      ds.corpus, EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  PipelineOptions serial_opt = OptionsWithThreads(1);
  serial_opt.build.levels_k = {};
  serial_opt.build.k_min = 2;
  serial_opt.build.k_max = 4;
  serial_opt.build.max_depth = 1;
  PipelineOptions parallel_opt = serial_opt;
  parallel_opt.exec.num_threads = 8;

  StatusOr<MinedHierarchy> serial = Mine(input, serial_opt);
  StatusOr<MinedHierarchy> parallel = Mine(input, parallel_opt);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  ExpectIdentical(serial.value(), parallel.value(), ds);
}

}  // namespace
}  // namespace latent::api
