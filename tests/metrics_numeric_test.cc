// Numeric-exactness tests: metric implementations checked against values
// computed by hand on tiny inputs.
#include <cmath>

#include <gtest/gtest.h>

#include "eval/hpmi.h"
#include "eval/mutual_info.h"
#include "eval/nkqm.h"
#include "phrase/frequent_miner.h"
#include "phrase/viterbi_segmenter.h"
#include "text/corpus.h"

namespace latent {
namespace {

TEST(HpmiNumericTest, ExactPairValue) {
  // 4 docs: {a,b} twice, {a} once, {b} once.
  // p(a) = 3/4, p(b) = 3/4, p(a,b) = 2/4.
  // PMI = log(0.5 / (0.75 * 0.75)) = log(8/9).
  text::Corpus c;
  c.AddTokenizedDocument({"a", "b"});
  c.AddTokenizedDocument({"a", "b"});
  c.AddTokenizedDocument({"a"});
  c.AddTokenizedDocument({"b"});
  eval::HpmiEvaluator hpmi(c, {}, {});
  int a = c.vocab().Lookup("a");
  int b = c.vocab().Lookup("b");
  double expected = std::log(0.5 / (0.75 * 0.75));
  EXPECT_NEAR(hpmi.Hpmi({a, b}, 0, {a, b}, 0), expected, 1e-12);
}

TEST(HpmiNumericTest, CrossTypeAveragesAllPairs) {
  // One entity co-occurring with word "a" in all docs.
  text::Corpus c;
  c.AddTokenizedDocument({"a"});
  c.AddTokenizedDocument({"a"});
  std::vector<hin::EntityDoc> ed(2);
  ed[0].entities = {{0}};
  ed[1].entities = {{0}};
  eval::HpmiEvaluator hpmi(c, {1}, ed);
  // p(a)=1, p(e)=1, p(a,e)=1 -> PMI = 0.
  EXPECT_NEAR(hpmi.Hpmi({c.vocab().Lookup("a")}, 0, {0}, 1), 0.0, 1e-12);
}

TEST(MutualInfoNumericTest, PerfectAssociationIsOneBit) {
  // Two categories, two topics, each doc contains exactly its topic's
  // phrase -> joint is diagonal -> MI = 1 bit.
  text::Corpus c;
  for (int i = 0; i < 10; ++i) {
    c.AddTokenizedDocument({"xx"});
    c.AddTokenizedDocument({"yy"});
  }
  std::vector<int> labels(20);
  for (int i = 0; i < 20; ++i) labels[i] = i % 2;
  phrase::MinerOptions mopt;
  mopt.min_support = 2;
  phrase::PhraseDict dict = phrase::MineFrequentPhrases(c, mopt);
  std::vector<std::vector<Scored<int>>> rankings(2);
  rankings[0].emplace_back(dict.Lookup({c.vocab().Lookup("xx")}), 1.0);
  rankings[1].emplace_back(dict.Lookup({c.vocab().Lookup("yy")}), 1.0);
  double mi = eval::MutualInformationAtK(c, labels, 2, dict, rankings, 5);
  EXPECT_NEAR(mi, 1.0, 1e-9);
}

TEST(ViterbiScoreNumericTest, MatchesClosedForm) {
  // Build counts: f(ab)=4, f(a)=10, f(b)=5, L=30.
  phrase::PhraseDict dict;
  int a = dict.Intern({0});
  dict.SetCount(a, 10);
  int b = dict.Intern({1});
  dict.SetCount(b, 5);
  int ab = dict.Intern({0, 1});
  dict.SetCount(ab, 4);
  double expected =
      std::log(4.0) - std::log(10.0) - std::log(5.0) + std::log(30.0) - 2.0;
  EXPECT_NEAR(phrase::ViterbiPhraseScore(dict, ab, 30.0, 2.0), expected,
              1e-12);
  // Unigram: log f - log f + 0*logL - penalty = -penalty.
  EXPECT_NEAR(phrase::ViterbiPhraseScore(dict, a, 30.0, 2.0), -2.0, 1e-12);
}

TEST(NkqmNumericTest, PerfectAgreementYieldsFullWeight) {
  // AgreementWeightedScore with zero judge noise returns the raw mean.
  // We can't remove the oracle noise here, but the bound must hold.
  // (Detailed oracle behaviour is tested in data_eval_test.)
  // Check the DCG normalization instead: a ranking identical to the ideal
  // pool scores exactly 1.
  // Construct through a minimal dataset.
  data::HinDatasetOptions opt = data::DblpLikeOptions(100, 3);
  opt.num_areas = 2;
  opt.subareas_per_area = 1;
  data::HinDataset ds = data::GenerateHinDataset(opt);
  eval::OracleJudge judge(ds, 7, /*noise_sd=*/0.0);
  eval::JudgedRanking r;
  r.area = 0;
  for (const auto& p : ds.subarea_phrases[0]) r.phrases.push_back(p);
  std::vector<std::pair<std::vector<int>, int>> pool;
  for (const auto& p : r.phrases) pool.emplace_back(p, 0);
  // With zero noise, scores are deterministic; a ranking that IS the pool
  // ordered by score can only reach <= 1, and the ideal itself = 1 when the
  // ranking enumerates the pool's top-K in order. Sort by score to check.
  std::sort(r.phrases.begin(), r.phrases.end(),
            [&](const auto& x, const auto& y) {
              return eval::AgreementWeightedScore(judge, x, 0) >
                     eval::AgreementWeightedScore(judge, y, 0);
            });
  double v = eval::Nkqm(judge, {r}, pool, 5);
  EXPECT_NEAR(v, 1.0, 1e-9);
}

}  // namespace
}  // namespace latent
