// latent_served: crash-tolerant TCP serving daemon over a mined hierarchy.
//
//   latent_served --corpus docs.txt [--entities links.tsv]
//                 [--tree tree.bin | --levels 5,3 --seed 42]
//                 [--port N] [--port-file FILE]
//                 [--max-inflight N] [--max-queue N]
//                 [--deadline-ms N] [--drain-ms N] [--retry-after-ms N]
//                 [--read-timeout-ms N] [--threads N]
//                 [--watchdog-ms N] [--stuck-ms N] [--failpoints SPEC]
//                 [--cache-mb N] [--cache-shards N] [--top-k N]
//                 [--metrics-json FILE] [--stem]
//
// Builds the same serve::HierarchyIndex snapshot as latent_serve, then
// publishes it into a served::SnapshotHandle and serves the length-prefixed
// wire protocol of src/served/protocol.h on 127.0.0.1:--port (0 = pick an
// ephemeral port; --port-file writes the bound port for scripts to read).
//
// Robustness contract (see docs/OPERATIONS.md, "latent_served"):
//   * every request carries a deadline that bounds its query;
//   * overload is shed fast with kResourceExhausted + a retry-after hint
//     once the admission queue (--max-queue) is full;
//   * SIGTERM / SIGINT start a graceful drain: the listener closes,
//     in-flight queries get --drain-ms to finish, stragglers are cancelled;
//   * SIGHUP rebuilds the index (re-reading --tree when given, re-mining
//     otherwise) and hot-swaps it with zero downtime — in-flight queries
//     finish on the old snapshot, responses are generation-tagged.
//
// Incremental refresh: with --delta-corpus (plus --base-checkpoint-dir and
// --refresh-checkpoint-dir), the initial in-process mine checkpoints its
// fits, and every SIGHUP re-reads the delta file, folds only the documents
// appended since the last refresh into the served hierarchy via
// api::Refresh — re-fitting just the subtrees the new documents touch —
// and publishes the result through the same zero-downtime snapshot swap.
// Refreshes compound: each one checkpoints into a fresh generation
// directory under --refresh-checkpoint-dir and becomes the base of the
// next. Delta documents are served without entity attachments.
//
// Exit codes: 0 clean drain, 1 runtime error, 2 usage error, 3 the drain
// deadline expired and straggler queries were cancelled.
#include <sys/stat.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/latent.h"
#include "api/refresh.h"
#include "common/retry.h"
#include "data/io.h"
#include "flags.h"
#include "served/server.h"
#include "served/snapshot.h"
#include "serve/engine.h"

namespace {

std::atomic<latent::served::Server*> g_server{nullptr};
std::atomic<bool> g_reload{false};

void OnShutdownSignal(int) {
  // Async-signal-safe: RequestShutdown is an atomic store + self-pipe
  // write. A second SIGTERM/SIGINT finds the default disposition restored
  // below and kills the process for real.
  if (latent::served::Server* server = g_server.load()) {
    server->RequestShutdown();
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

void OnReloadSignal(int) { g_reload.store(true); }

int Usage() {
  std::fprintf(
      stderr,
      "usage: latent_served --corpus FILE [--entities FILE] [--tree FILE]\n"
      "                     [--levels 5,3] [--min-support N] [--seed N]\n"
      "                     [--port N] [--port-file FILE]\n"
      "                     [--max-inflight N] [--max-queue N]\n"
      "                     [--deadline-ms N] [--drain-ms N]\n"
      "                     [--retry-after-ms N] [--read-timeout-ms N]\n"
      "                     [--watchdog-ms N] [--stuck-ms N]\n"
      "                     [--failpoints SPEC]\n"
      "                     [--threads N] [--cache-mb N] [--cache-shards N]\n"
      "                     [--top-k N] [--metrics-json FILE] [--stem]\n"
      "                     [--delta-corpus FILE --base-checkpoint-dir DIR\n"
      "                      --refresh-checkpoint-dir DIR\n"
      "                      [--route-threshold X] [--no-warm-start]]\n"
      "  --port N             TCP port on 127.0.0.1 (default 0 = ephemeral)\n"
      "  --port-file FILE     write the bound port to FILE once listening\n"
      "  --max-inflight N     connections served concurrently (default 4)\n"
      "  --max-queue N        admission-queue bound; a full queue sheds new\n"
      "                       connections with kResourceExhausted\n"
      "                       (default 16)\n"
      "  --deadline-ms N      default per-request deadline when the frame\n"
      "                       does not carry one (default 0 = none)\n"
      "  --drain-ms N         grace for in-flight requests after SIGTERM\n"
      "                       before they are cancelled (default 2000)\n"
      "  --retry-after-ms N   backoff hint on shed responses (default 50)\n"
      "  --read-timeout-ms N  per-socket receive timeout (default 0 = none)\n"
      "  --watchdog-ms N      watchdog scan interval: sheds queue entries\n"
      "                       already past --deadline-ms and tracks stuck\n"
      "                       workers (default 250; 0 = no watchdog)\n"
      "  --stuck-ms N         log + count a worker whose request runs\n"
      "                       longer than N ms (default 0 = off)\n"
      "  --failpoints SPEC    arm runtime fault schedules, e.g.\n"
      "                       'served.read=p:0.05;served.stall=every:7'\n"
      "                       (see docs/OPERATIONS.md; LATENT_FAILPOINTS\n"
      "                       env is the fallback when the flag is absent)\n"
      "  --threads N          index build / mine threads (0 = all cores)\n"
      "  --metrics-json FILE  dump served.* and serve.* metrics as JSON to\n"
      "                       FILE on exit; see docs/METRICS.md\n"
      "  --delta-corpus FILE  incremental refresh: on SIGHUP, fold the\n"
      "                       documents appended to FILE since the last\n"
      "                       refresh into the served hierarchy via\n"
      "                       api::Refresh (re-fits only touched subtrees)\n"
      "                       instead of re-mining from scratch\n"
      "  --base-checkpoint-dir DIR   checkpoint the initial in-process mine\n"
      "                       here; the first refresh reuses its fits\n"
      "  --refresh-checkpoint-dir DIR  each refresh checkpoints into a new\n"
      "                       generation directory under DIR and becomes\n"
      "                       the base of the next (compounding refreshes)\n"
      "  --route-threshold X  re-fit a subtree when it absorbs at least\n"
      "                       this fraction of its parent's delta evidence\n"
      "                       (default 0.05; <= 0 re-fits everything)\n"
      "  --no-warm-start      re-fit dirty subtrees cold instead of seeding\n"
      "                       them from the base fits\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latent;
  std::string corpus_path, entities_path, tree_path, port_file_path;
  std::string metrics_json_path;
  std::vector<int> levels = {5, 3};
  long long min_support = 5;
  uint64_t seed = 42;
  int num_threads = 0;
  long long port = 0;
  long long max_inflight = 4;
  long long max_queue = 16;
  long long deadline_ms = 0;
  long long drain_ms = 2000;
  long long retry_after_ms = 50;
  long long read_timeout_ms = 0;
  long long watchdog_ms = 250;
  long long stuck_ms = 0;
  std::string failpoints_spec;
  long long cache_mb = 64;
  long long cache_shards = 8;
  long long top_k = 10;
  bool stem = false;
  std::string delta_corpus_path, base_checkpoint_dir, refresh_checkpoint_dir;
  double route_threshold = 0.05;
  bool warm_start = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_int = [&](long long* out) {
      const char* v = next();
      if (!tools::ParseInt(v, out)) {
        std::fprintf(stderr, "error: %s needs an integer argument\n",
                     arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--corpus") {
      if (const char* v = next()) corpus_path = v;
    } else if (arg == "--entities") {
      if (const char* v = next()) entities_path = v;
    } else if (arg == "--tree") {
      if (const char* v = next()) tree_path = v;
    } else if (arg == "--levels") {
      const char* v = next();
      if (v == nullptr || !tools::ParseIntList(v, &levels)) {
        std::fprintf(stderr,
                     "error: --levels needs a comma-separated integer list\n");
        return 2;
      }
    } else if (arg == "--min-support") {
      next_int(&min_support);
    } else if (arg == "--seed") {
      unsigned long long v = 0;
      if (!tools::ParseUInt(next(), &v)) {
        std::fprintf(stderr,
                     "error: --seed needs a non-negative integer argument\n");
        return 2;
      }
      seed = v;
    } else if (arg == "--threads") {
      long long v = 0;
      next_int(&v);
      num_threads = static_cast<int>(v);
    } else if (arg == "--port") {
      next_int(&port);
    } else if (arg == "--port-file") {
      if (const char* v = next()) port_file_path = v;
    } else if (arg == "--max-inflight") {
      next_int(&max_inflight);
    } else if (arg == "--max-queue") {
      next_int(&max_queue);
    } else if (arg == "--deadline-ms") {
      next_int(&deadline_ms);
    } else if (arg == "--drain-ms") {
      next_int(&drain_ms);
    } else if (arg == "--retry-after-ms") {
      next_int(&retry_after_ms);
    } else if (arg == "--read-timeout-ms") {
      next_int(&read_timeout_ms);
    } else if (arg == "--watchdog-ms") {
      next_int(&watchdog_ms);
    } else if (arg == "--stuck-ms") {
      next_int(&stuck_ms);
    } else if (arg == "--failpoints") {
      if (const char* v = next()) failpoints_spec = v;
    } else if (arg == "--cache-mb") {
      next_int(&cache_mb);
    } else if (arg == "--cache-shards") {
      next_int(&cache_shards);
    } else if (arg == "--top-k") {
      next_int(&top_k);
    } else if (arg == "--metrics-json") {
      if (const char* v = next()) metrics_json_path = v;
    } else if (arg == "--stem") {
      stem = true;
    } else if (arg == "--delta-corpus") {
      if (const char* v = next()) delta_corpus_path = v;
    } else if (arg == "--base-checkpoint-dir") {
      if (const char* v = next()) base_checkpoint_dir = v;
    } else if (arg == "--refresh-checkpoint-dir") {
      if (const char* v = next()) refresh_checkpoint_dir = v;
    } else if (arg == "--route-threshold") {
      if (!tools::ParseDouble(next(), &route_threshold)) {
        std::fprintf(stderr,
                     "error: --route-threshold needs a finite number\n");
        return 2;
      }
    } else if (arg == "--no-warm-start") {
      warm_start = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (corpus_path.empty()) return Usage();
  const bool refresh_mode = !delta_corpus_path.empty();
  if (refresh_mode &&
      (base_checkpoint_dir.empty() || refresh_checkpoint_dir.empty())) {
    std::fprintf(stderr,
                 "error: --delta-corpus needs --base-checkpoint-dir and "
                 "--refresh-checkpoint-dir\n");
    return Usage();
  }
  if (refresh_mode && !tree_path.empty()) {
    std::fprintf(stderr,
                 "error: --delta-corpus refreshes the in-process mine and "
                 "cannot be combined with --tree\n");
    return Usage();
  }
  if (!refresh_mode &&
      (!base_checkpoint_dir.empty() || !refresh_checkpoint_dir.empty())) {
    std::fprintf(stderr,
                 "error: --base-checkpoint-dir/--refresh-checkpoint-dir "
                 "only apply with --delta-corpus\n");
    return Usage();
  }
  if (!tools::ArmFailpoints("latent_served", failpoints_spec)) return 2;
  if (refresh_mode) {
    // Per-generation refresh checkpoints live one level below this dir,
    // and the checkpointer only creates that last level itself.
    if (::mkdir(refresh_checkpoint_dir.c_str(), 0777) != 0 &&
        errno != EEXIST) {
      std::fprintf(stderr, "error: cannot create %s: %s\n",
                   refresh_checkpoint_dir.c_str(), std::strerror(errno));
      return 1;
    }
  }

  // A client vanishing mid-response must never kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  text::TokenizeOptions topt;
  topt.stem = stem;
  auto corpus_or = data::LoadCorpusFromFile(corpus_path, topt);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus_or.status().message().c_str());
    return 1;
  }
  const text::Corpus& corpus = corpus_or.value();
  std::fprintf(stderr, "loaded %d docs, %d unique words\n", corpus.num_docs(),
               corpus.vocab_size());

  data::EntityAttachments attachments;
  bool have_entities = false;
  if (!entities_path.empty()) {
    auto loaded = data::LoadEntityAttachments(entities_path, corpus.num_docs());
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
      return 1;
    }
    attachments = std::move(loaded.value());
    have_entities = true;
    std::fprintf(stderr, "loaded %zu entity types\n",
                 attachments.type_names.size());
  }

  // Two executors on purpose: the build executor mines/loads indexes (and
  // re-runs on SIGHUP reloads); the serve executor is dedicated to the
  // server's worker loops, as Server::Start requires.
  exec::ExecOptions build_eopt;
  build_eopt.num_threads = num_threads;
  exec::Executor build_ex(build_eopt);
  exec::ExecOptions serve_eopt;
  serve_eopt.num_threads = static_cast<int>(max_inflight);
  exec::Executor serve_ex(serve_eopt);

  // Refresh state: the served hierarchy (base of the next refresh), how
  // many delta-file documents have been folded in so far, the checkpoint
  // directory the NEXT refresh resumes fits from, and the entity
  // attachments of the served corpus (delta documents get none).
  std::unique_ptr<api::MinedHierarchy> current;
  int consumed_delta_docs = 0;
  long long refresh_gen = 0;
  std::string current_base_dir = base_checkpoint_dir;
  std::vector<hin::EntityDoc> served_entity_docs = attachments.entity_docs;
  // Points at the corpus the live snapshot was mined from; refreshes move
  // it to the merged corpus owned by `current`.
  const text::Corpus* named_corpus = &corpus;

  serve::IndexOptions iopt;
  if (have_entities) {
    iopt.namer = [&named_corpus, &attachments](int type,
                                               int id) -> std::string {
      if (type == 0) {
        if (id < named_corpus->vocab_size()) {
          return named_corpus->vocab().Token(id);
        }
      } else if (type - 1 < static_cast<int>(attachments.entity_names.size())) {
        const text::Vocabulary& names = attachments.entity_names[type - 1];
        if (id < names.size()) return names.Token(id);
      }
      std::string fallback = "#";
      fallback += std::to_string(id);
      return fallback;
    };
  }

  phrase::MinerOptions miner;
  miner.min_support = min_support;

  obs::Registry metrics;
  const bool want_metrics = !metrics_json_path.empty();

  // The pipeline configuration of the in-process mine. In refresh mode the
  // initial mine checkpoints its fits into --base-checkpoint-dir (resuming
  // them if a previous daemon already mined there) so the first SIGHUP
  // refresh has a base to reuse.
  api::PipelineOptions mine_opt;
  mine_opt.build.levels_k = levels;
  mine_opt.build.max_depth = static_cast<int>(levels.size());
  mine_opt.build.cluster.seed = seed;
  mine_opt.miner.min_support = min_support;
  mine_opt.exec.num_threads = num_threads;
  if (refresh_mode) {
    mine_opt.checkpoint_dir = base_checkpoint_dir;
    mine_opt.resume = true;
  }

  // Wraps a built index into a query engine. The engine gets NO executor —
  // daemon queries are single requests, and the serve executor's threads
  // are all occupied by server worker loops.
  auto finish_engine = [&](serve::HierarchyIndex index)
      -> StatusOr<std::unique_ptr<const serve::QueryEngine>> {
    serve::QueryOptions qopt;
    qopt.default_k = static_cast<int>(top_k);
    qopt.cache_bytes = cache_mb > 0 ? cache_mb << 20 : 0;
    qopt.cache_shards = static_cast<int>(cache_shards);
    if (want_metrics) qopt.metrics = &metrics;
    StatusOr<std::unique_ptr<serve::QueryEngine>> engine =
        serve::QueryEngine::Create(std::move(index), qopt, nullptr);
    if (!engine.ok()) return engine.status();
    return std::unique_ptr<const serve::QueryEngine>(
        std::move(engine.value()));
  };

  // Builds a fresh engine snapshot: --tree loads the serialized artifact
  // (re-read on every call, so SIGHUP picks up a rewritten file), otherwise
  // the hierarchy is mined in-process.
  auto build_engine =
      [&]() -> StatusOr<std::unique_ptr<const serve::QueryEngine>> {
    serve::HierarchyIndex index;
    if (!tree_path.empty()) {
      StatusOr<std::string> blob = data::ReadFile(tree_path);
      if (!blob.ok()) return blob.status();
      StatusOr<serve::HierarchyIndex> loaded = serve::HierarchyIndex::Load(
          blob.value(), corpus, miner, iopt, &build_ex);
      if (!loaded.ok()) return loaded.status();
      index = std::move(loaded.value());
    } else {
      api::PipelineInput input(
          corpus,
          api::EntitySchema(attachments.type_names, attachments.TypeSizes()),
          attachments.entity_docs);
      StatusOr<api::MinedHierarchy> mined = api::Mine(input, mine_opt);
      if (!mined.ok()) return mined.status();
      StatusOr<serve::HierarchyIndex> built = mined.value().MakeIndex(iopt);
      if (!built.ok()) return built.status();
      if (refresh_mode) {
        current =
            std::make_unique<api::MinedHierarchy>(std::move(mined.value()));
        named_corpus = &current->corpus();
      }
      index = std::move(built.value());
    }
    return finish_engine(std::move(index));
  };

  // Incremental SIGHUP path: re-read the delta file, fold only the
  // documents appended since the last refresh into the served hierarchy,
  // and advance the refresh state (the refreshed result becomes the base
  // of the next refresh; its checkpoint directory rotates per generation).
  auto refresh_engine =
      [&]() -> StatusOr<std::unique_ptr<const serve::QueryEngine>> {
    StatusOr<text::Corpus> all_or =
        data::LoadCorpusFromFile(delta_corpus_path, topt);
    if (!all_or.ok()) return all_or.status();
    const text::Corpus& all = all_or.value();
    if (all.num_docs() < consumed_delta_docs) {
      return Status::FailedPrecondition(
          "delta corpus " + delta_corpus_path + " shrank (" +
          std::to_string(all.num_docs()) + " docs < " +
          std::to_string(consumed_delta_docs) +
          " already folded in); deltas must be append-only");
    }
    // The unconsumed tail, re-interned into its own vocabulary (Refresh
    // merges by token string, not id).
    text::Corpus delta;
    for (int d = consumed_delta_docs; d < all.num_docs(); ++d) {
      const text::Document& doc = all.docs()[d];
      std::vector<int> ids;
      ids.reserve(doc.tokens.size());
      for (int t : doc.tokens) {
        ids.push_back(delta.mutable_vocab().Intern(all.vocab().Token(t)));
      }
      delta.AddDocumentIds(std::move(ids));
      delta.mutable_doc(delta.num_docs() - 1).segment_starts =
          doc.segment_starts;
    }
    std::fprintf(stderr, "refresh: %d new delta docs\n", delta.num_docs());
    api::RefreshOptions ropt;
    ropt.pipeline = mine_opt;
    ropt.pipeline.checkpoint_dir =
        refresh_checkpoint_dir + "/gen-" + std::to_string(refresh_gen + 1);
    ropt.pipeline.resume = true;
    ropt.base_checkpoint_dir = current_base_dir;
    if (!served_entity_docs.empty()) {
      ropt.base_entity_docs = &served_entity_docs;
    }
    ropt.route_threshold = route_threshold;
    ropt.warm_start = warm_start;
    api::PipelineInput delta_input;
    delta_input.corpus = &delta;
    StatusOr<api::MinedHierarchy> refreshed =
        api::Refresh(*current, delta_input, ropt);
    if (!refreshed.ok()) return refreshed.status();
    StatusOr<serve::HierarchyIndex> built = refreshed.value().MakeIndex(iopt);
    if (!built.ok()) return built.status();
    // Commit the refresh state only once everything downstream succeeded.
    *current = std::move(refreshed.value());
    named_corpus = &current->corpus();
    consumed_delta_docs = all.num_docs();
    current_base_dir = ropt.pipeline.checkpoint_dir;
    ++refresh_gen;
    if (!served_entity_docs.empty()) {
      served_entity_docs.resize(
          static_cast<size_t>(current->corpus().num_docs()));
    }
    return finish_engine(std::move(built.value()));
  };

  auto first_engine = build_engine();
  if (!first_engine.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 first_engine.status().message().c_str());
    return 1;
  }

  served::SnapshotHandle snapshots;
  served::ServedOptions sopt;
  sopt.port = static_cast<int>(port);
  sopt.max_inflight = static_cast<int>(max_inflight);
  sopt.max_queue = static_cast<int>(max_queue);
  sopt.default_deadline_ms = deadline_ms;
  sopt.drain_deadline_ms = drain_ms;
  sopt.retry_after_ms = retry_after_ms;
  sopt.read_timeout_ms = read_timeout_ms;
  sopt.watchdog_poll_ms = watchdog_ms;
  sopt.stuck_threshold_ms = stuck_ms;
  if (want_metrics) sopt.metrics = &metrics;
  StatusOr<std::unique_ptr<served::Server>> server_or =
      served::Server::Start(&snapshots, sopt, &serve_ex);
  if (!server_or.ok()) {
    std::fprintf(stderr, "error: %s\n", server_or.status().message().c_str());
    return server_or.status().code() == StatusCode::kInvalidArgument ? 2 : 1;
  }
  served::Server& server = *server_or.value();
  if (StatusOr<long long> gen = server.PublishSnapshot(
          std::move(first_engine.value()));
      !gen.ok()) {
    std::fprintf(stderr, "error: %s\n", gen.status().message().c_str());
    return 1;
  }

  if (!port_file_path.empty()) {
    const io::RetryPolicy retry;
    Status s = io::WithRetry(retry, [&] {
      return data::WriteFile(port_file_path,
                             std::to_string(server.port()) + "\n");
    });
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "serving on 127.0.0.1:%d (generation %lld)\n",
               server.port(), snapshots.generation());

  g_server.store(&server);
  struct sigaction sa{};
  sa.sa_handler = OnShutdownSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction hup{};
  hup.sa_handler = OnReloadSignal;
  ::sigaction(SIGHUP, &hup, nullptr);

  while (!server.ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_reload.exchange(false)) {
      std::fprintf(stderr, refresh_mode
                               ? "refreshing snapshot (SIGHUP)\n"
                               : "reloading snapshot (SIGHUP)\n");
      auto engine = refresh_mode ? refresh_engine() : build_engine();
      if (!engine.ok()) {
        // The old snapshot keeps serving; a broken reload is not fatal.
        std::fprintf(stderr, "error: reload failed: %s\n",
                     engine.status().message().c_str());
        continue;
      }
      StatusOr<long long> gen =
          server.PublishSnapshot(std::move(engine.value()));
      if (!gen.ok()) {
        std::fprintf(stderr, "error: reload failed: %s\n",
                     gen.status().message().c_str());
        continue;
      }
      std::fprintf(stderr, "published generation %lld\n", gen.value());
    }
  }

  const Status drained = server.Wait();
  g_server.store(nullptr);
  if (!drained.ok()) {
    std::fprintf(stderr, "drain: %s\n", drained.message().c_str());
  } else {
    std::fprintf(stderr, "drained cleanly\n");
  }

  if (want_metrics) {
    const io::RetryPolicy retry;
    Status s = io::WithRetry(retry, [&] {
      return data::WriteFile(metrics_json_path, metrics.ToJson());
    });
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", metrics_json_path.c_str());
  }
  return drained.ok() ? 0 : 3;
}
