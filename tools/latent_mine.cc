// latent_mine: command-line driver for the full pipeline.
//
//   latent_mine --corpus docs.txt [--entities links.tsv]
//               [--levels 6,4] [--min-support 5] [--seed 42]
//               [--checkpoint-dir DIR] [--resume]
//               [--json out.json] [--save tree.bin] [--stem]
//
// Reads a corpus (one document per line) and optional entity attachments
// (TSV: doc_index \t type_name \t entity_name), mines a phrase-represented
// entity-enriched topical hierarchy, prints it, and optionally exports JSON
// or a reloadable serialized tree. With --checkpoint-dir the build
// periodically snapshots its progress; after a crash, rerunning with
// --resume continues from the newest valid snapshot and produces the same
// tree an uninterrupted run would have.
//
// SIGTERM / SIGINT trip the run's CancelToken instead of killing the
// process: the build winds down cooperatively, commits the deepest
// fully-converged partial frontier, and every export (--json / --save /
// --metrics-json) still happens. A second signal kills for real.
//
// Incremental re-mining: with --refresh-from TREE (a previous --save
// export) plus --delta-corpus and --base-checkpoint-dir, the tool calls
// api::Refresh instead of api::Mine — only the subtrees the delta
// documents touch are re-fit (warm-started from the base checkpoint);
// clean subtrees are reused byte-identically. --corpus/--entities then
// name the BASE inputs the tree was mined from.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/latent.h"
#include "api/refresh.h"
#include "common/retry.h"
#include "core/serialize.h"
#include "data/io.h"
#include "flags.h"
#include "phrase/frequent_miner.h"

namespace {

// Written once in main() before the handlers are installed. Cancel() is a
// relaxed atomic store, so tripping it from a signal handler is
// async-signal-safe.
latent::run::CancelToken* g_cancel = nullptr;

void OnStopSignal(int) {
  if (g_cancel != nullptr) g_cancel->Cancel();
  // Restore the default dispositions so a second SIGTERM/SIGINT kills a
  // run that is too stuck to wind down cooperatively.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: latent_mine --corpus FILE [--entities FILE] [--levels 6,4]\n"
      "                   [--min-support N] [--seed N] [--threads N]\n"
      "                   [--inference em|spectral|auto]\n"
      "                   [--timeout-s N] [--work-budget N]\n"
      "                   [--checkpoint-dir DIR] [--checkpoint-every N]\n"
      "                   [--resume] [--json FILE] [--save FILE]\n"
      "                   [--metrics-json FILE] [--progress]\n"
      "                   [--failpoints SPEC] [--stem] [--equal-weights]\n"
      "                   [--refresh-from TREE --delta-corpus FILE\n"
      "                    --base-checkpoint-dir DIR [--delta-entities FILE]\n"
      "                    [--route-threshold X] [--no-warm-start]]\n"
      "  --threads N          worker threads (0 = all cores, 1 = serial;\n"
      "                       results are identical either way)\n"
      "  --inference MODE     per-node topic inference backend: em (default,\n"
      "                       link-clustering EM), spectral (STROD moment\n"
      "                       tensor decomposition), or auto (spectral on\n"
      "                       document-rich nodes, EM elsewhere); see\n"
      "                       docs/OPERATIONS.md\n"
      "  --timeout-s N        stop mining after ~N seconds and print\n"
      "                       whatever fully-converged partial hierarchy\n"
      "                       was reached (N must be > 0)\n"
      "  --work-budget N      stop mining after ~N EM iterations of work\n"
      "                       (N must be > 0)\n"
      "  --checkpoint-dir DIR periodically snapshot build progress into\n"
      "                       DIR (crash-safe, checksummed)\n"
      "  --checkpoint-every N snapshot every N completed node fits\n"
      "                       (default 8; 0 = only a final snapshot)\n"
      "  --resume             restore the newest valid snapshot from\n"
      "                       --checkpoint-dir before building; the result\n"
      "                       is identical to an uninterrupted run\n"
      "  --metrics-json FILE  dump every pipeline metric (EM iterations,\n"
      "                       node fits, thread-pool and checkpoint\n"
      "                       activity, phase timings) as JSON to FILE\n"
      "                       after the run; see docs/METRICS.md\n"
      "  --progress           print a throttled progress line to stderr\n"
      "                       (~1/s) while mining\n"
      "  --failpoints SPEC    arm runtime fault schedules, e.g.\n"
      "                       'io.read=p:0.05;ckpt.write=every:7' (see\n"
      "                       docs/OPERATIONS.md; LATENT_FAILPOINTS env is\n"
      "                       the fallback when the flag is absent)\n"
      "  --refresh-from TREE  incremental re-mine: fold a delta corpus into\n"
      "                       the hierarchy previously exported with --save;\n"
      "                       --corpus/--entities then name the BASE inputs\n"
      "  --delta-corpus FILE  the NEW documents only (one per line)\n"
      "  --delta-entities FILE entity attachments of the delta documents\n"
      "                       (doc indices are delta-relative; names are\n"
      "                       matched against the base entity universes)\n"
      "  --base-checkpoint-dir DIR  checkpoint directory of the base mine;\n"
      "                       its fingerprint must match --corpus + options\n"
      "  --route-threshold X  re-fit a subtree when it absorbs at least this\n"
      "                       fraction of its parent's delta evidence\n"
      "                       (default 0.05; <= 0 re-fits everything)\n"
      "  --no-warm-start      re-fit dirty subtrees cold instead of seeding\n"
      "                       them from the base checkpoint's fits\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latent;
  std::string corpus_path, entities_path, json_path, save_path;
  std::string checkpoint_dir, metrics_json_path;
  bool progress = false;
  std::vector<int> levels = {5, 3};
  long long min_support = 5;
  uint64_t seed = 42;
  int num_threads = 0;
  long long timeout_s = 0;
  bool timeout_set = false;
  long long work_budget = 0;
  bool work_budget_set = false;
  long long checkpoint_every = 8;
  bool resume = false;
  bool stem = false;
  bool learn_weights = true;
  std::string failpoints_spec;
  std::string refresh_from, delta_corpus_path, delta_entities_path;
  std::string base_checkpoint_dir;
  double route_threshold = 0.05;
  bool warm_start = true;
  core::InferenceBackendKind inference = core::InferenceBackendKind::kEm;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_int = [&](long long* out) {
      const char* v = next();
      if (!tools::ParseInt(v, out)) {
        std::fprintf(stderr, "error: %s needs an integer argument\n",
                     arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--corpus") {
      if (const char* v = next()) corpus_path = v;
    } else if (arg == "--entities") {
      if (const char* v = next()) entities_path = v;
    } else if (arg == "--levels") {
      const char* v = next();
      if (v == nullptr || !tools::ParseIntList(v, &levels)) {
        std::fprintf(stderr,
                     "error: --levels needs a comma-separated integer list\n");
        std::exit(2);
      }
    } else if (arg == "--min-support") {
      next_int(&min_support);
    } else if (arg == "--seed") {
      unsigned long long v = 0;
      if (!tools::ParseUInt(next(), &v)) {
        std::fprintf(stderr,
                     "error: --seed needs a non-negative integer argument\n");
        std::exit(2);
      }
      seed = v;
    } else if (arg == "--threads") {
      long long v = 0;
      next_int(&v);
      num_threads = static_cast<int>(v);
    } else if (arg == "--inference") {
      const char* v = next();
      if (v != nullptr && std::strcmp(v, "em") == 0) {
        inference = core::InferenceBackendKind::kEm;
      } else if (v != nullptr && std::strcmp(v, "spectral") == 0) {
        inference = core::InferenceBackendKind::kSpectral;
      } else if (v != nullptr && std::strcmp(v, "auto") == 0) {
        inference = core::InferenceBackendKind::kAuto;
      } else {
        std::fprintf(stderr,
                     "error: --inference needs em, spectral, or auto (got "
                     "%s)\n",
                     v == nullptr ? "nothing" : v);
        return Usage();
      }
    } else if (arg == "--timeout-s") {
      next_int(&timeout_s);
      timeout_set = true;
    } else if (arg == "--work-budget") {
      next_int(&work_budget);
      work_budget_set = true;
    } else if (arg == "--checkpoint-dir") {
      if (const char* v = next()) checkpoint_dir = v;
    } else if (arg == "--checkpoint-every") {
      next_int(&checkpoint_every);
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--save") {
      if (const char* v = next()) save_path = v;
    } else if (arg == "--metrics-json") {
      if (const char* v = next()) metrics_json_path = v;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg == "--failpoints") {
      if (const char* v = next()) failpoints_spec = v;
    } else if (arg == "--stem") {
      stem = true;
    } else if (arg == "--equal-weights") {
      learn_weights = false;
    } else if (arg == "--refresh-from") {
      if (const char* v = next()) refresh_from = v;
    } else if (arg == "--delta-corpus") {
      if (const char* v = next()) delta_corpus_path = v;
    } else if (arg == "--delta-entities") {
      if (const char* v = next()) delta_entities_path = v;
    } else if (arg == "--base-checkpoint-dir") {
      if (const char* v = next()) base_checkpoint_dir = v;
    } else if (arg == "--route-threshold") {
      if (!tools::ParseDouble(next(), &route_threshold)) {
        std::fprintf(stderr,
                     "error: --route-threshold needs a finite number\n");
        std::exit(2);
      }
    } else if (arg == "--no-warm-start") {
      warm_start = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (corpus_path.empty()) return Usage();
  const bool refresh_mode = !refresh_from.empty();
  if (refresh_mode &&
      (delta_corpus_path.empty() || base_checkpoint_dir.empty())) {
    std::fprintf(stderr,
                 "error: --refresh-from needs --delta-corpus and "
                 "--base-checkpoint-dir\n");
    return Usage();
  }
  if (!refresh_mode &&
      (!delta_corpus_path.empty() || !delta_entities_path.empty() ||
       !base_checkpoint_dir.empty())) {
    std::fprintf(stderr,
                 "error: --delta-corpus/--delta-entities/"
                 "--base-checkpoint-dir only apply with --refresh-from\n");
    return Usage();
  }
  if (!tools::ArmFailpoints("latent_mine", failpoints_spec)) return 2;

  text::TokenizeOptions topt;
  topt.stem = stem;
  auto corpus_or = data::LoadCorpusFromFile(corpus_path, topt);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus_or.status().message().c_str());
    return 1;
  }
  const text::Corpus& corpus = corpus_or.value();
  std::fprintf(stderr, "loaded %d docs, %d unique words\n", corpus.num_docs(),
               corpus.vocab_size());

  std::vector<std::string> type_names;
  std::vector<int> type_sizes;
  std::vector<hin::EntityDoc> entity_docs;
  data::EntityAttachments attachments;
  if (!entities_path.empty()) {
    auto loaded = data::LoadEntityAttachments(entities_path, corpus.num_docs());
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
      return 1;
    }
    attachments = std::move(loaded.value());
    type_names = attachments.type_names;
    type_sizes = attachments.TypeSizes();
    entity_docs = attachments.entity_docs;
    std::fprintf(stderr, "loaded %zu entity types\n", type_names.size());
  }

  api::PipelineOptions opt;
  opt.build.levels_k = levels;
  opt.build.max_depth = static_cast<int>(levels.size());
  opt.build.cluster.weight_mode = learn_weights
                                      ? core::LinkWeightMode::kLearned
                                      : core::LinkWeightMode::kEqual;
  opt.build.cluster.seed = seed;
  opt.inference.backend = inference;
  opt.miner.min_support = min_support;
  opt.exec.num_threads = num_threads;
  // Explicit --timeout-s 0 / --work-budget 0 (and all negatives) must fail
  // validation rather than silently meaning "unbounded" — map the explicit
  // non-positive value to a sentinel Validate() rejects.
  if (timeout_set) opt.deadline_ms = timeout_s > 0 ? timeout_s * 1000 : -1;
  if (work_budget_set) opt.work_budget = work_budget > 0 ? work_budget : -1;
  opt.checkpoint_dir = checkpoint_dir;
  opt.checkpoint_every_nodes = static_cast<int>(checkpoint_every);
  opt.resume = resume;
  // Observability: --metrics-json attaches a registry (dumped after the
  // run), --progress adds a ~1/s stderr progress line fed by the same
  // stats. Neither changes the mined result.
  obs::Registry metrics;
  if (!metrics_json_path.empty()) opt.metrics = &metrics;
  if (progress) {
    opt.progress = [](const obs::ProgressEvent& ev) {
      std::fprintf(stderr,
                   "progress: %.1fs  nodes=%llu (+%llu cached)  em-iters=%llu"
                   "  retries=%llu  ckpt-gen=%lld\n",
                   ev.elapsed_ms / 1000.0,
                   static_cast<unsigned long long>(ev.nodes_fitted),
                   static_cast<unsigned long long>(ev.nodes_cached),
                   static_cast<unsigned long long>(ev.em_iterations),
                   static_cast<unsigned long long>(ev.retries),
                   ev.checkpoint_generation);
    };
  }
  // An operator kill (SIGTERM/SIGINT) cancels the run cooperatively: the
  // build commits its partial frontier and the exports below still run.
  static run::CancelToken cancel_token;
  g_cancel = &cancel_token;
  opt.cancel = std::shared_ptr<const run::CancelToken>(
      &cancel_token, [](const run::CancelToken*) {});
  std::signal(SIGTERM, OnStopSignal);
  std::signal(SIGINT, OnStopSignal);
  api::PipelineInput input(
      corpus, api::EntitySchema(type_names, type_sizes), entity_docs);

  // Refresh mode needs the delta inputs loaded — and delta entity names
  // re-interned through the base universes so ids line up — before the
  // call. Everything here outlives the Refresh() call below.
  StatusOr<text::Corpus> delta_corpus_or =
      Status::InvalidArgument("no delta corpus loaded");
  std::vector<hin::EntityDoc> delta_entity_docs;
  api::MinedHierarchy existing;
  StatusOr<api::MinedHierarchy> result =
      Status::InvalidArgument("pipeline never ran");
  if (refresh_mode) {
    auto blob = data::ReadFile(refresh_from);
    if (!blob.ok()) {
      std::fprintf(stderr, "error: %s\n", blob.status().message().c_str());
      return 1;
    }
    auto tree_or = core::DeserializeHierarchy(blob.value());
    if (!tree_or.ok()) {
      std::fprintf(stderr, "error: %s\n", tree_or.status().message().c_str());
      return 1;
    }
    delta_corpus_or = data::LoadCorpusFromFile(delta_corpus_path, topt);
    if (!delta_corpus_or.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   delta_corpus_or.status().message().c_str());
      return 1;
    }
    const text::Corpus& delta_corpus = delta_corpus_or.value();
    std::fprintf(stderr, "loaded %d delta docs\n", delta_corpus.num_docs());
    if (!delta_entities_path.empty()) {
      auto loaded = data::LoadEntityAttachments(delta_entities_path,
                                                delta_corpus.num_docs());
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     loaded.status().message().c_str());
        return 1;
      }
      // Remap delta ids into the base universes by entity NAME; unseen
      // names grow the base universe (and the merged schema with it).
      const data::EntityAttachments& da = loaded.value();
      std::vector<int> type_map(da.type_names.size(), -1);
      for (size_t t = 0; t < da.type_names.size(); ++t) {
        for (size_t b = 0; b < attachments.type_names.size(); ++b) {
          if (da.type_names[t] == attachments.type_names[b]) {
            type_map[t] = static_cast<int>(b);
            break;
          }
        }
        if (type_map[t] < 0) {
          std::fprintf(stderr,
                       "error: delta entity type %s is not in the base "
                       "schema\n",
                       da.type_names[t].c_str());
          return 1;
        }
      }
      delta_entity_docs.resize(da.entity_docs.size());
      for (size_t d = 0; d < da.entity_docs.size(); ++d) {
        delta_entity_docs[d].entities.resize(attachments.type_names.size());
        for (size_t t = 0; t < da.entity_docs[d].entities.size(); ++t) {
          for (int id : da.entity_docs[d].entities[t]) {
            delta_entity_docs[d].entities[type_map[t]].push_back(
                attachments.entity_names[type_map[t]].Intern(
                    da.entity_names[t].Token(id)));
          }
        }
      }
      type_sizes = attachments.TypeSizes();  // universes may have grown
    }
    // The base tree rides in a MinedHierarchy shell: Refresh() only reads
    // its corpus and tree, but the shell needs a phrase dict to exist —
    // re-mine it from the base corpus (cheap next to any EM fit).
    existing = api::MinedHierarchy(
        corpus, std::move(tree_or.value()),
        phrase::MineFrequentPhrases(corpus, opt.miner), 0);
    api::RefreshOptions ropt;
    ropt.pipeline = opt;
    ropt.base_checkpoint_dir = base_checkpoint_dir;
    if (!entity_docs.empty()) ropt.base_entity_docs = &entity_docs;
    ropt.route_threshold = route_threshold;
    ropt.warm_start = warm_start;
    api::PipelineInput delta_input;
    delta_input.corpus = &delta_corpus;
    if (!delta_entity_docs.empty()) {
      delta_input.schema = api::EntitySchema(type_names, type_sizes);
      delta_input.entity_docs = &delta_entity_docs;
    }
    result = api::Refresh(existing, delta_input, ropt);
  } else {
    result = api::Mine(input, opt);
  }
  if (cancel_token.cancelled()) {
    std::fprintf(stderr,
                 "interrupted: committing the partial hierarchy frontier\n");
  }
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().message().c_str());
    return 1;
  }
  const api::MinedHierarchy& mined = result.value();
  if (mined.partial()) {
    std::fprintf(stderr,
                 "warning: run budget hit; printing the partial hierarchy "
                 "(deepest fully-converged frontier)\n");
  }
  if (!mined.checkpoint_warning().empty()) {
    std::fprintf(stderr, "warning: %s\n", mined.checkpoint_warning().c_str());
  }

  phrase::KertOptions kopt;
  std::printf("%s", mined.RenderTree(kopt, 5).c_str());

  // Final exports ride the same transient-failure retry policy the
  // checkpointer uses: a busy filesystem shouldn't discard a long run.
  const io::RetryPolicy retry;
  if (!json_path.empty()) {
    // In refresh mode the result spans the MERGED corpus/universes, so
    // names must come from the result's own corpus, not the base one.
    auto namer = [&](int type, int id) -> std::string {
      if (type == 0) return mined.corpus().vocab().Token(id);
      return attachments.entity_names[type - 1].Token(id);
    };
    const std::string json = core::HierarchyToJson(mined.tree(), namer);
    Status s = io::WithRetry(
        retry, [&] { return data::WriteFile(json_path, json); });
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  if (!save_path.empty()) {
    const std::string blob = core::SerializeHierarchy(mined.tree());
    Status s = io::WithRetry(
        retry, [&] { return data::WriteFile(save_path, blob); });
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", save_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    Status s = io::WithRetry(retry, [&] {
      return data::WriteFile(metrics_json_path, metrics.ToJson());
    });
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", metrics_json_path.c_str());
  }
  return 0;
}
