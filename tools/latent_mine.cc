// latent_mine: command-line driver for the full pipeline.
//
//   latent_mine --corpus docs.txt [--entities links.tsv]
//               [--levels 6,4] [--min-support 5] [--seed 42]
//               [--json out.json] [--save tree.bin] [--stem]
//
// Reads a corpus (one document per line) and optional entity attachments
// (TSV: doc_index \t type_name \t entity_name), mines a phrase-represented
// entity-enriched topical hierarchy, prints it, and optionally exports JSON
// or a reloadable serialized tree.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "api/latent.h"
#include "core/serialize.h"
#include "data/io.h"

namespace {

// Parses "6,4" into {6, 4}.
std::vector<int> ParseLevels(const std::string& spec) {
  std::vector<int> out;
  std::string cur;
  for (char c : spec + ",") {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::atoi(cur.c_str()));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  return out;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: latent_mine --corpus FILE [--entities FILE] [--levels 6,4]\n"
      "                   [--min-support N] [--seed N] [--threads N]\n"
      "                   [--timeout-s N] [--json FILE] [--save FILE]\n"
      "                   [--stem] [--equal-weights]\n"
      "  --threads N   worker threads (0 = all cores, 1 = serial; results\n"
      "                are identical either way)\n"
      "  --timeout-s N stop mining after ~N seconds and print whatever\n"
      "                fully-converged partial hierarchy was reached\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latent;
  std::string corpus_path, entities_path, json_path, save_path;
  std::vector<int> levels = {5, 3};
  long long min_support = 5;
  uint64_t seed = 42;
  int num_threads = 0;
  long long timeout_s = 0;
  bool stem = false;
  bool learn_weights = true;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--corpus") {
      if (const char* v = next()) corpus_path = v;
    } else if (arg == "--entities") {
      if (const char* v = next()) entities_path = v;
    } else if (arg == "--levels") {
      if (const char* v = next()) levels = ParseLevels(v);
    } else if (arg == "--min-support") {
      if (const char* v = next()) min_support = std::atoll(v);
    } else if (arg == "--seed") {
      if (const char* v = next()) seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      if (const char* v = next()) num_threads = std::atoi(v);
    } else if (arg == "--timeout-s") {
      if (const char* v = next()) timeout_s = std::atoll(v);
    } else if (arg == "--json") {
      if (const char* v = next()) json_path = v;
    } else if (arg == "--save") {
      if (const char* v = next()) save_path = v;
    } else if (arg == "--stem") {
      stem = true;
    } else if (arg == "--equal-weights") {
      learn_weights = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (corpus_path.empty()) return Usage();

  text::TokenizeOptions topt;
  topt.stem = stem;
  auto corpus_or = data::LoadCorpusFromFile(corpus_path, topt);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus_or.status().message().c_str());
    return 1;
  }
  const text::Corpus& corpus = corpus_or.value();
  std::fprintf(stderr, "loaded %d docs, %d unique words\n", corpus.num_docs(),
               corpus.vocab_size());

  std::vector<std::string> type_names;
  std::vector<int> type_sizes;
  std::vector<hin::EntityDoc> entity_docs;
  data::EntityAttachments attachments;
  if (!entities_path.empty()) {
    auto loaded = data::LoadEntityAttachments(entities_path, corpus.num_docs());
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
      return 1;
    }
    attachments = std::move(loaded.value());
    type_names = attachments.type_names;
    type_sizes = attachments.TypeSizes();
    entity_docs = attachments.entity_docs;
    std::fprintf(stderr, "loaded %zu entity types\n", type_names.size());
  }

  api::PipelineOptions opt;
  opt.build.levels_k = levels;
  opt.build.max_depth = static_cast<int>(levels.size());
  opt.build.cluster.weight_mode = learn_weights
                                      ? core::LinkWeightMode::kLearned
                                      : core::LinkWeightMode::kEqual;
  opt.build.cluster.seed = seed;
  opt.miner.min_support = min_support;
  opt.exec.num_threads = num_threads;
  if (timeout_s > 0) opt.deadline_ms = timeout_s * 1000;
  api::PipelineInput input(
      corpus, api::EntitySchema(type_names, type_sizes), entity_docs);
  StatusOr<api::MinedHierarchy> result = api::Mine(input, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().message().c_str());
    return 1;
  }
  const api::MinedHierarchy& mined = result.value();
  if (mined.partial()) {
    std::fprintf(stderr,
                 "warning: deadline hit; printing the partial hierarchy "
                 "(deepest fully-converged frontier)\n");
  }

  phrase::KertOptions kopt;
  std::printf("%s", mined.RenderTree(kopt, 5).c_str());

  if (!json_path.empty()) {
    auto namer = [&](int type, int id) -> std::string {
      if (type == 0) return corpus.vocab().Token(id);
      return attachments.entity_names[type - 1].Token(id);
    };
    Status s = data::WriteFile(json_path,
                               core::HierarchyToJson(mined.tree(), namer));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  }
  if (!save_path.empty()) {
    Status s = data::WriteFile(save_path,
                               core::SerializeHierarchy(mined.tree()));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", save_path.c_str());
  }
  return 0;
}
