// Strict flag-value parsing shared by the latent_* CLIs (latent_mine,
// latent_serve). Every parser accepts the value only when the WHOLE string
// is a well-formed base-10 number that fits the output type: trailing
// junk, empty input, and overflow all return false, so "--seed abc",
// "--threads 99999999999999999999" and "--levels 6,,4" are usage errors
// (exit 2) instead of silently becoming 0 or wrapping.
#ifndef LATENT_TOOLS_FLAGS_H_
#define LATENT_TOOLS_FLAGS_H_

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"

namespace latent::tools {

/// Strict signed parse of the whole string; rejects empty input, trailing
/// junk, and values outside [LLONG_MIN, LLONG_MAX].
inline bool ParseInt(const char* s, long long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict unsigned parse. A '-' anywhere is rejected up front because
/// strtoull would silently wrap "-1" to ULLONG_MAX.
inline bool ParseUInt(const char* s, unsigned long long* out) {
  if (s == nullptr || *s == '\0') return false;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '-') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict double parse of the whole string (decimal or scientific
/// notation); rejects empty input, trailing junk, and non-finite values.
inline bool ParseDouble(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  if (!(v >= -1e308 && v <= 1e308)) return false;  // NaN / inf
  *out = v;
  return true;
}

/// Strict parse of a comma-separated int list ("6,4" -> {6, 4}). Empty
/// items ("6,,4"), non-numeric items, out-of-int-range items, and an empty
/// spec are all rejected.
inline bool ParseIntList(const std::string& spec, std::vector<int>* out) {
  out->clear();
  std::string item;
  for (size_t i = 0; i <= spec.size(); ++i) {
    const char c = i < spec.size() ? spec[i] : ',';
    if (c != ',') {
      item.push_back(c);
      continue;
    }
    long long v = 0;
    if (!ParseInt(item.c_str(), &v) || v < -2147483648LL ||
        v > 2147483647LL) {
      return false;
    }
    out->push_back(static_cast<int>(v));
    item.clear();
  }
  return !out->empty();
}

/// Arms runtime fault schedules from --failpoints (or, when the flag is
/// empty, the LATENT_FAILPOINTS env var). Shared by every latent_* CLI so
/// the grammar and the error wording stay identical. Returns false after
/// printing a usage-style error when the spec is malformed or when a spec
/// is given but the build compiled the fail-point sites out — silently
/// ignoring a requested fault schedule would make a chaos run look clean.
inline bool ArmFailpoints(const char* tool, const std::string& flag_value) {
  std::string spec = flag_value;
  if (spec.empty()) {
    const char* env = std::getenv("LATENT_FAILPOINTS");
    if (env != nullptr) spec = env;
  }
  if (spec.empty()) return true;
  if (!run::failpoint::CompiledIn()) {
    std::fprintf(stderr,
                 "%s: fault schedules requested but this build compiled "
                 "fail points out (-DLATENT_FAILPOINTS=OFF)\n",
                 tool);
    return false;
  }
  const StatusOr<int> armed = run::failpoint::ArmFromSpec(spec);
  if (!armed.ok()) {
    std::fprintf(stderr, "%s: %s\n", tool, armed.status().message().c_str());
    return false;
  }
  std::fprintf(stderr, "%s: armed %d fault schedule(s)\n", tool,
               armed.value());
  return true;
}

}  // namespace latent::tools

#endif  // LATENT_TOOLS_FLAGS_H_
