// Strict flag-value parsing shared by the latent_* CLIs (latent_mine,
// latent_serve). Every parser accepts the value only when the WHOLE string
// is a well-formed base-10 number that fits the output type: trailing
// junk, empty input, and overflow all return false, so "--seed abc",
// "--threads 99999999999999999999" and "--levels 6,,4" are usage errors
// (exit 2) instead of silently becoming 0 or wrapping.
#ifndef LATENT_TOOLS_FLAGS_H_
#define LATENT_TOOLS_FLAGS_H_

#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

namespace latent::tools {

/// Strict signed parse of the whole string; rejects empty input, trailing
/// junk, and values outside [LLONG_MIN, LLONG_MAX].
inline bool ParseInt(const char* s, long long* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict unsigned parse. A '-' anywhere is rejected up front because
/// strtoull would silently wrap "-1" to ULLONG_MAX.
inline bool ParseUInt(const char* s, unsigned long long* out) {
  if (s == nullptr || *s == '\0') return false;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == '-') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Strict parse of a comma-separated int list ("6,4" -> {6, 4}). Empty
/// items ("6,,4"), non-numeric items, out-of-int-range items, and an empty
/// spec are all rejected.
inline bool ParseIntList(const std::string& spec, std::vector<int>* out) {
  out->clear();
  std::string item;
  for (size_t i = 0; i <= spec.size(); ++i) {
    const char c = i < spec.size() ? spec[i] : ',';
    if (c != ',') {
      item.push_back(c);
      continue;
    }
    long long v = 0;
    if (!ParseInt(item.c_str(), &v) || v < -2147483648LL ||
        v > 2147483647LL) {
      return false;
    }
    out->push_back(static_cast<int>(v));
    item.clear();
  }
  return !out->empty();
}

}  // namespace latent::tools

#endif  // LATENT_TOOLS_FLAGS_H_
