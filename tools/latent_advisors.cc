// latent_advisors: command-line advisor-advisee mining (Chapter 6).
//
//   latent_advisors --papers papers.tsv [--theta 0.5] [--top-k 1]
//                   [--no-rules] [--out predictions.tsv]
//
// papers.tsv lines: <year> \t <author> [\t <author> ...]. Author names are
// interned; the tool builds the temporal collaboration network, runs the
// TPFG pipeline, and prints "advisee \t advisor \t score \t start \t end"
// for every predicted relation.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/io.h"
#include "relation/genealogy.h"
#include "relation/tpfg.h"
#include "relation/tpfg_preprocess.h"
#include "text/vocabulary.h"

int main(int argc, char** argv) {
  using namespace latent;
  std::string papers_path, out_path, dot_path;
  double theta = 0.5;
  int top_k = 1;
  bool rules = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--papers") {
      if (const char* v = next()) papers_path = v;
    } else if (arg == "--theta") {
      if (const char* v = next()) theta = std::atof(v);
    } else if (arg == "--top-k") {
      if (const char* v = next()) top_k = std::atoi(v);
    } else if (arg == "--no-rules") {
      rules = false;
    } else if (arg == "--out") {
      if (const char* v = next()) out_path = v;
    } else if (arg == "--dot") {
      if (const char* v = next()) dot_path = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (papers_path.empty()) {
    std::fprintf(stderr,
                 "usage: latent_advisors --papers FILE [--theta T] "
                 "[--top-k K] [--no-rules] [--out FILE] [--dot FILE]\n");
    return 2;
  }

  // Pass 1: intern authors.
  std::ifstream in(papers_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", papers_path.c_str());
    return 1;
  }
  text::Vocabulary authors;
  struct Paper {
    int year;
    std::vector<int> authors;
  };
  std::vector<Paper> papers;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    std::string field;
    Paper paper;
    if (!std::getline(row, field, '\t')) continue;
    paper.year = std::atoi(field.c_str());
    while (std::getline(row, field, '\t')) {
      if (!field.empty()) paper.authors.push_back(authors.Intern(field));
    }
    if (!paper.authors.empty()) papers.push_back(std::move(paper));
  }
  std::fprintf(stderr, "loaded %zu papers, %d authors\n", papers.size(),
               authors.size());

  relation::CollabNetwork net(authors.size());
  for (const Paper& p : papers) net.AddPaper(p.year, p.authors);

  relation::PreprocessOptions popt;
  popt.rule_r1 = popt.rule_r2 = popt.rule_r3 = popt.rule_r4 = rules;
  relation::CandidateDag dag = relation::BuildCandidateDag(net, popt);
  relation::TpfgResult result = relation::RunTpfg(dag, relation::TpfgOptions());
  std::vector<int> predicted = relation::PredictAtK(dag, result, top_k, theta);

  std::string out;
  for (int i = 0; i < authors.size(); ++i) {
    if (predicted[i] < 0) continue;
    // Locate the score and advising period of the predicted candidate.
    for (size_t c = 0; c < dag.candidates[i].size(); ++c) {
      const relation::Candidate& cand = dag.candidates[i][c];
      if (cand.advisor != predicted[i]) continue;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4f\t%d\t%d",
                    result.scores[i][c], cand.start_year, cand.end_year);
      out += authors.Token(i) + "\t" + authors.Token(cand.advisor) + "\t" +
             buf + "\n";
      break;
    }
  }
  if (!dot_path.empty()) {
    relation::Genealogy genealogy(predicted);
    auto namer = [&](int i) { return authors.Token(i); };
    Status s = data::WriteFile(dot_path, genealogy.ToDot(namer));
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", dot_path.c_str());
  }
  if (out_path.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    Status s = data::WriteFile(out_path, out);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return 0;
}
