// latent_serve: command-line query server over a mined hierarchy.
//
//   latent_serve --corpus docs.txt [--entities links.tsv]
//                [--tree tree.bin | --levels 5,3 --seed 42]
//                [--threads N] [--cache-mb N] [--cache-shards N]
//                [--top-k N] [--deadline-ms N]
//                [--requests FILE] [--metrics-json FILE] [--stem]
//
// Loads a corpus and either a serialized hierarchy artifact (--tree, as
// written by latent_mine --save) or mines one in-process, builds an
// immutable serve::HierarchyIndex snapshot, and answers queries through a
// serve::QueryEngine — batched from a request file (--requests, one query
// per line) or interactively from a stdin REPL. Query grammar, one per
// line ('#' starts a comment):
//
//   lookup PATH            full topic view, e.g. `lookup o/1/2`
//   search WORDS...        top-k phrases matching the words
//   entity NAME            top-k topics of an entity ("type:name" or a
//                          unique bare name), e.g. `entity author:smith`
//   subtree PATH [DEPTH]   pre-order walk DEPTH levels below PATH
//   quit                   end the REPL
//
// The REPL rejects NUL bytes and overlong (> 1 MiB) lines with
// line-numbered errors, ends cleanly on EOF, and ignores SIGPIPE so a
// vanished stdout reader ends the session instead of killing the process.
//
// Exit codes follow latent_mine: 0 ok (per-query errors are reported in
// the output, not the exit code), 1 runtime error, 2 usage error.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/latent.h"
#include "common/retry.h"
#include "data/io.h"
#include "flags.h"
#include "serve/engine.h"
#include "serve/request.h"

namespace {

/// REPL line-length bound: a longer line is rejected (and consumed) with a
/// line-numbered error instead of being split into surprise sub-queries.
constexpr size_t kMaxReplLineBytes = 1u << 20;

int Usage() {
  std::fprintf(
      stderr,
      "usage: latent_serve --corpus FILE [--entities FILE] [--tree FILE]\n"
      "                    [--levels 5,3] [--min-support N] [--seed N]\n"
      "                    [--threads N] [--cache-mb N] [--cache-shards N]\n"
      "                    [--top-k N] [--deadline-ms N] [--requests FILE]\n"
      "                    [--failpoints SPEC]\n"
      "                    [--metrics-json FILE] [--stem]\n"
      "  --tree FILE          serialized hierarchy (latent_mine --save);\n"
      "                       without it the hierarchy is mined in-process\n"
      "                       from --corpus using --levels/--min-support/\n"
      "                       --seed (latent_mine defaults)\n"
      "  --threads N          worker threads for batch fan-out and index\n"
      "                       building (0 = all cores, 1 = serial; the\n"
      "                       answers are byte-identical either way)\n"
      "  --cache-mb N         result-cache budget in MiB (default 64;\n"
      "                       0 disables the cache — answers unchanged)\n"
      "  --cache-shards N     LRU shard count (default 8)\n"
      "  --top-k N            default result count per query (default 10)\n"
      "  --deadline-ms N      per-query deadline (default 0 = none)\n"
      "  --requests FILE      answer the queries in FILE (one per line,\n"
      "                       '#' comments) and exit; without it, a stdin\n"
      "                       REPL\n"
      "  --metrics-json FILE  dump every serve.* metric (queries, cache\n"
      "                       hits/evictions, latency histogram) as JSON\n"
      "                       to FILE on exit; see docs/METRICS.md\n"
      "  --failpoints SPEC    arm runtime fault schedules, e.g.\n"
      "                       'io.read=p:0.05' (see docs/OPERATIONS.md;\n"
      "                       LATENT_FAILPOINTS env is the fallback when\n"
      "                       the flag is absent)\n");
  return 2;
}

// Parses one request line via the shared serve::ParseRequest grammar;
// empty/comment lines return false with an empty error, malformed lines
// return false with the parser's message.
bool ParseRequestLine(const std::string& line, latent::serve::Request* req,
                      std::string* err) {
  err->clear();
  const size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos || line[begin] == '#') return false;
  latent::StatusOr<latent::serve::Request> parsed =
      latent::serve::ParseRequest(line);
  if (!parsed.ok()) {
    *err = parsed.status().message();
    return false;
  }
  *req = std::move(parsed.value());
  return true;
}

void PrintResponse(const std::string& line,
                   const latent::serve::Response& resp) {
  std::printf("= %s\n", line.c_str());
  if (resp.code != latent::StatusCode::kOk) {
    std::printf("error: %s\n", resp.message.c_str());
  } else if (resp.text.empty()) {
    std::printf("(no results)\n");
  } else {
    std::printf("%s", resp.text.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace latent;
  std::string corpus_path, entities_path, tree_path, requests_path;
  std::string metrics_json_path;
  std::vector<int> levels = {5, 3};
  long long min_support = 5;
  uint64_t seed = 42;
  int num_threads = 0;
  long long cache_mb = 64;
  long long cache_shards = 8;
  long long top_k = 10;
  long long deadline_ms = 0;
  bool stem = false;
  std::string failpoints_spec;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto next_int = [&](long long* out) {
      const char* v = next();
      if (!tools::ParseInt(v, out)) {
        std::fprintf(stderr, "error: %s needs an integer argument\n",
                     arg.c_str());
        std::exit(2);
      }
    };
    if (arg == "--corpus") {
      if (const char* v = next()) corpus_path = v;
    } else if (arg == "--entities") {
      if (const char* v = next()) entities_path = v;
    } else if (arg == "--tree") {
      if (const char* v = next()) tree_path = v;
    } else if (arg == "--levels") {
      const char* v = next();
      if (v == nullptr || !tools::ParseIntList(v, &levels)) {
        std::fprintf(stderr,
                     "error: --levels needs a comma-separated integer list\n");
        return 2;
      }
    } else if (arg == "--min-support") {
      next_int(&min_support);
    } else if (arg == "--seed") {
      unsigned long long v = 0;
      if (!tools::ParseUInt(next(), &v)) {
        std::fprintf(stderr,
                     "error: --seed needs a non-negative integer argument\n");
        return 2;
      }
      seed = v;
    } else if (arg == "--threads") {
      long long v = 0;
      next_int(&v);
      num_threads = static_cast<int>(v);
    } else if (arg == "--cache-mb") {
      next_int(&cache_mb);
    } else if (arg == "--cache-shards") {
      next_int(&cache_shards);
    } else if (arg == "--top-k") {
      next_int(&top_k);
    } else if (arg == "--deadline-ms") {
      next_int(&deadline_ms);
    } else if (arg == "--requests") {
      if (const char* v = next()) requests_path = v;
    } else if (arg == "--metrics-json") {
      if (const char* v = next()) metrics_json_path = v;
    } else if (arg == "--failpoints") {
      if (const char* v = next()) failpoints_spec = v;
    } else if (arg == "--stem") {
      stem = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
  }
  if (corpus_path.empty()) return Usage();
  if (!tools::ArmFailpoints("latent_serve", failpoints_spec)) return 2;

  // A reader vanishing from the other end of stdout (broken pipe) must end
  // the REPL cleanly, not kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  text::TokenizeOptions topt;
  topt.stem = stem;
  auto corpus_or = data::LoadCorpusFromFile(corpus_path, topt);
  if (!corpus_or.ok()) {
    std::fprintf(stderr, "error: %s\n", corpus_or.status().message().c_str());
    return 1;
  }
  const text::Corpus& corpus = corpus_or.value();
  std::fprintf(stderr, "loaded %d docs, %d unique words\n", corpus.num_docs(),
               corpus.vocab_size());

  data::EntityAttachments attachments;
  bool have_entities = false;
  if (!entities_path.empty()) {
    auto loaded = data::LoadEntityAttachments(entities_path, corpus.num_docs());
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
      return 1;
    }
    attachments = std::move(loaded.value());
    have_entities = true;
    std::fprintf(stderr, "loaded %zu entity types\n",
                 attachments.type_names.size());
  }

  exec::ExecOptions eopt;
  eopt.num_threads = num_threads;
  exec::Executor ex(eopt);

  serve::IndexOptions iopt;
  if (have_entities) {
    iopt.namer = [&corpus, &attachments](int type, int id) -> std::string {
      if (type == 0) {
        if (id < corpus.vocab_size()) return corpus.vocab().Token(id);
      } else if (type - 1 < static_cast<int>(attachments.entity_names.size())) {
        const text::Vocabulary& names = attachments.entity_names[type - 1];
        if (id < names.size()) return names.Token(id);
      }
      std::string fallback = "#";
      fallback += std::to_string(id);
      return fallback;
    };
  }

  phrase::MinerOptions miner;
  miner.min_support = min_support;

  serve::HierarchyIndex index;
  if (!tree_path.empty()) {
    // Serving an artifact: re-mine the phrase surface over the corpus the
    // tree was mined from, then snapshot.
    StatusOr<std::string> blob = data::ReadFile(tree_path);
    if (!blob.ok()) {
      std::fprintf(stderr, "error: %s\n", blob.status().message().c_str());
      return 1;
    }
    StatusOr<serve::HierarchyIndex> loaded =
        serve::HierarchyIndex::Load(blob.value(), corpus, miner, iopt, &ex);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
      return 1;
    }
    index = std::move(loaded.value());
  } else {
    api::PipelineOptions opt;
    opt.build.levels_k = levels;
    opt.build.max_depth = static_cast<int>(levels.size());
    opt.build.cluster.seed = seed;
    opt.miner.min_support = min_support;
    opt.exec.num_threads = num_threads;
    api::PipelineInput input(
        corpus,
        api::EntitySchema(attachments.type_names, attachments.TypeSizes()),
        attachments.entity_docs);
    StatusOr<api::MinedHierarchy> mined = api::Mine(input, opt);
    if (!mined.ok()) {
      std::fprintf(stderr, "error: %s\n", mined.status().message().c_str());
      return 1;
    }
    StatusOr<serve::HierarchyIndex> built = mined.value().MakeIndex(iopt);
    if (!built.ok()) {
      std::fprintf(stderr, "error: %s\n", built.status().message().c_str());
      return 1;
    }
    index = std::move(built.value());
  }
  std::fprintf(stderr, "index ready: %d topics, %d phrases, %d types\n",
               index.num_topics(), index.num_phrases(), index.num_types());

  obs::Registry metrics;
  serve::QueryOptions qopt;
  qopt.default_k = static_cast<int>(top_k);
  qopt.deadline_ms = deadline_ms;
  qopt.cache_bytes = cache_mb > 0 ? cache_mb << 20 : 0;
  qopt.cache_shards = static_cast<int>(cache_shards);
  if (!metrics_json_path.empty()) qopt.metrics = &metrics;
  StatusOr<std::unique_ptr<serve::QueryEngine>> engine_or =
      serve::QueryEngine::Create(std::move(index), qopt, &ex);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 engine_or.status().message().c_str());
    return 2;
  }
  const serve::QueryEngine& engine = *engine_or.value();

  int exit_code = 0;
  if (!requests_path.empty()) {
    StatusOr<std::string> file = data::ReadFile(requests_path);
    if (!file.ok()) {
      std::fprintf(stderr, "error: %s\n", file.status().message().c_str());
      return 1;
    }
    std::vector<std::string> lines;
    std::vector<serve::Request> batch;
    std::string line;
    int lineno = 0;
    for (size_t i = 0; i <= file.value().size(); ++i) {
      if (i < file.value().size() && file.value()[i] != '\n') {
        line.push_back(file.value()[i]);
        continue;
      }
      ++lineno;
      serve::Request req;
      std::string err;
      if (ParseRequestLine(line, &req, &err)) {
        lines.push_back(line);
        batch.push_back(std::move(req));
      } else if (!err.empty()) {
        std::fprintf(stderr, "error: %s:%d: %s\n", requests_path.c_str(),
                     lineno, err.c_str());
        return 2;
      }
      line.clear();
    }
    const std::vector<serve::Response> responses = engine.RunBatch(batch);
    for (size_t i = 0; i < responses.size(); ++i) {
      PrintResponse(lines[i], responses[i]);
    }
    std::fprintf(stderr, "answered %zu queries\n", responses.size());
  } else {
    // Stdin REPL: one query per line, answers to stdout, `quit` ends.
    // Hardened against hostile/garbled input: NUL bytes and overlong lines
    // are rejected with line-numbered errors (the rest of the offending
    // line is consumed, so the stream stays line-synced), EOF ends the
    // REPL cleanly, and a vanished stdout reader (SIGPIPE is ignored
    // above) ends it instead of killing the process.
    std::fprintf(stderr, "ready (lookup/search/entity/subtree, quit ends)\n");
    int lineno = 0;
    while (true) {
      std::string line;
      bool overlong = false;
      bool has_nul = false;
      int c;
      while ((c = std::fgetc(stdin)) != EOF && c != '\n') {
        if (c == '\0') {
          has_nul = true;
        } else if (line.size() >= kMaxReplLineBytes) {
          overlong = true;
        } else {
          line.push_back(static_cast<char>(c));
        }
      }
      if (c == EOF && line.empty() && !has_nul && !overlong) break;
      ++lineno;
      while (!line.empty() && line.back() == '\r') line.pop_back();
      if (has_nul) {
        std::fprintf(stderr, "error: stdin:%d: line contains a NUL byte\n",
                     lineno);
      } else if (overlong) {
        std::fprintf(stderr, "error: stdin:%d: line exceeds %zu bytes\n",
                     lineno, kMaxReplLineBytes);
      } else if (line == "quit" || line == "exit") {
        break;
      } else {
        serve::Request req;
        std::string err;
        if (!ParseRequestLine(line, &req, &err)) {
          if (!err.empty()) {
            std::fprintf(stderr, "error: stdin:%d: %s\n", lineno, err.c_str());
          }
        } else {
          PrintResponse(line, engine.Run(req));
          if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
            std::fprintf(stderr, "stdout closed; exiting\n");
            break;
          }
        }
      }
      if (c == EOF) break;
    }
  }

  if (!metrics_json_path.empty()) {
    const io::RetryPolicy retry;
    Status s = io::WithRetry(retry, [&] {
      return data::WriteFile(metrics_json_path, metrics.ToJson());
    });
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", metrics_json_path.c_str());
  }
  return exit_code;
}
