#!/usr/bin/env bash
# Failpoint lint: the registered-site comment block in
# src/common/failpoint.h must stay in sync with reality. Fails (exit 1)
# listing every mismatch when
#   * a LATENT_FAILPOINT("site", ...) call site in src/ or tools/ is not
#     listed in the failpoint.h comment block (undocumented site), or
#   * a site listed in the comment block has no LATENT_FAILPOINT call site
#     anywhere (stale documentation), or
#   * a documented site is missing from the failpoint table in
#     docs/OPERATIONS.md (the operator-facing copy of the same list).
# Registered with ctest as `failpoint.lint` (label: docs); run directly as
# tools/failpoint_lint.sh [repo-root].
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
fp_h="$root/src/common/failpoint.h"
ops_md="$root/docs/OPERATIONS.md"

for f in "$fp_h" "$ops_md"; do
  if [ ! -f "$f" ]; then
    echo "failpoint_lint: missing $f" >&2
    exit 1
  fi
done

# Sites named at call sites: every LATENT_FAILPOINT("<name>" across the
# production tree (clang-format puts the name on the next line for long
# invocations, hence -A1). Site names are dotted tokens; injected-failure
# message strings contain spaces, so they never match the token pattern.
# Tests arm sites but never declare them, so they are out of scope.
called=$(grep -rh --include='*.cc' --include='*.h' -A1 'LATENT_FAILPOINT(' \
    "$root/src" "$root/tools" \
  | grep -oE '"[a-z0-9]+(\.[a-z0-9]+)+"' | tr -d '"' | sort -u)

# Sites documented in the header's registered-site block: the indented
# two-space "name  description" lines between the list opener and the
# include guard.
documented=$(awk '/Registered site names/,/#ifndef/' "$fp_h" \
  | grep -oE '^//   [a-z0-9._]+ ' | sed 's|^//   ||; s/ $//' | sort -u)

fail=0
if [ -z "$called" ] || [ -z "$documented" ]; then
  echo "failpoint_lint: extraction came up empty —" \
       "the lint itself is broken, refusing to pass vacuously" >&2
  exit 1
fi

for site in $called; do
  if ! echo "$documented" | grep -qx "$site"; then
    echo "failpoint_lint: site $site has a LATENT_FAILPOINT call site but" \
         "is not listed in src/common/failpoint.h" >&2
    fail=1
  fi
done
for site in $documented; do
  if ! echo "$called" | grep -qx "$site"; then
    echo "failpoint_lint: site $site is listed in src/common/failpoint.h" \
         "but has no LATENT_FAILPOINT call site" >&2
    fail=1
  fi
  if ! grep -qw -- "$site" "$ops_md"; then
    echo "failpoint_lint: site $site is not documented in" \
         "docs/OPERATIONS.md" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "failpoint_lint: OK ($(echo "$documented" | wc -l) sites in sync)"
fi
exit "$fail"
