#!/usr/bin/env bash
# Docs lint: the operator guide must document the complete operator
# surface. Fails (exit 1) listing anything missing when
#   * a latent_mine command-line flag parsed in tools/latent_mine.cc,
#   * a latent_serve command-line flag parsed in tools/latent_serve.cc,
#   * a latent_served command-line flag parsed in tools/latent_served.cc,
#   * a PipelineOptions field declared in src/api/latent.h,
#   * a RefreshOptions field declared in src/api/refresh.h,
#   * an InferenceOptions or SpectralOptions field declared in
#     src/core/inference.h, or
#   * a QueryOptions field declared in src/serve/engine.h, or
#   * a ServedOptions field declared in src/served/server.h
# does not appear in docs/OPERATIONS.md, or when
#   * a bench_* binary registered in bench/CMakeLists.txt
# does not appear in docs/PERFORMANCE.md (the perf-trajectory workflow doc
# must keep a complete bench inventory). Registered with ctest as
# `docs.lint` (label: docs); run directly as tools/docs_lint.sh [repo-root].
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
mine_cc="$root/tools/latent_mine.cc"
serve_cc="$root/tools/latent_serve.cc"
served_cc="$root/tools/latent_served.cc"
api_h="$root/src/api/latent.h"
refresh_h="$root/src/api/refresh.h"
inference_h="$root/src/core/inference.h"
engine_h="$root/src/serve/engine.h"
server_h="$root/src/served/server.h"
ops_md="$root/docs/OPERATIONS.md"
bench_cmake="$root/bench/CMakeLists.txt"
perf_md="$root/docs/PERFORMANCE.md"

fail=0
for f in "$mine_cc" "$serve_cc" "$served_cc" "$api_h" "$refresh_h" \
         "$inference_h" "$engine_h" "$server_h" "$ops_md" "$bench_cmake" \
         "$perf_md"; do
  if [ ! -f "$f" ]; then
    echo "docs_lint: missing $f" >&2
    exit 1
  fi
done

# Every string-literal flag a CLI compares against.
cli_flags() {
  grep -o '"--[a-z-]*"' "$1" | tr -d '"' | sort -u
}

# Every field of a struct: strip comments, keep declaration lines
# (trailing ';', no parens => not Validate()), drop any default
# initializer, take the last identifier.
struct_fields() {
  awk "/^struct $2 \\{/,/^\\};/" "$1" \
    | sed -e 's|//.*||' \
    | grep -E ';[[:space:]]*$' \
    | grep -v '(' \
    | grep -vE '^[[:space:]]*\};[[:space:]]*$' \
    | sed -E 's/[[:space:]]*=[[:space:]]*[^;]*;//; s/;//; s/.*[ *]//' \
    | sort -u
}

# Every bench binary registered in bench/CMakeLists.txt (both the
# latent_add_bench macro calls and bare add_executable targets).
bench_targets() {
  grep -oE '(latent_add_bench|add_executable)\(bench_[a-z0-9_]+' "$1" \
    | sed -E 's/.*\((bench_[a-z0-9_]+)/\1/' \
    | sort -u
}

# check_surface <label> <items> [<doc>] — every item must appear in the doc
# (default docs/OPERATIONS.md). (Called directly, not in a subshell, so it
# can set the global `fail`.)
check_surface() {
  local label="$1" items="$2" doc="${3:-$ops_md}"
  if [ -z "$items" ]; then
    echo "docs_lint: extraction came up empty ($label) —" \
         "the lint itself is broken, refusing to pass vacuously" >&2
    exit 1
  fi
  local item
  for item in $items; do
    if ! grep -qw -- "$item" "$doc"; then
      echo "docs_lint: $label $item is not documented in" \
           "${doc#"$root"/}" >&2
      fail=1
    fi
  done
}

mine_flags=$(cli_flags "$mine_cc")
serve_flags=$(cli_flags "$serve_cc")
served_flags=$(cli_flags "$served_cc")
popt_fields=$(struct_fields "$api_h" PipelineOptions)
ropt_fields=$(struct_fields "$refresh_h" RefreshOptions)
iopt_fields=$(struct_fields "$inference_h" InferenceOptions)
sopt_fields=$(struct_fields "$inference_h" SpectralOptions)
qopt_fields=$(struct_fields "$engine_h" QueryOptions)
dopt_fields=$(struct_fields "$server_h" ServedOptions)
bench_bins=$(bench_targets "$bench_cmake")

check_surface "latent_mine flag" "$mine_flags"
check_surface "latent_serve flag" "$serve_flags"
check_surface "latent_served flag" "$served_flags"
check_surface "PipelineOptions field" "$popt_fields"
check_surface "RefreshOptions field" "$ropt_fields"
check_surface "InferenceOptions field" "$iopt_fields"
check_surface "SpectralOptions field" "$sopt_fields"
check_surface "QueryOptions field" "$qopt_fields"
check_surface "ServedOptions field" "$dopt_fields"
check_surface "bench binary" "$bench_bins" "$perf_md"

if [ "$fail" -eq 0 ]; then
  echo "docs_lint: OK" \
       "($(echo "$mine_flags" | wc -l) + $(echo "$serve_flags" | wc -l) +" \
       "$(echo "$served_flags" | wc -l) flags," \
       "$(echo "$popt_fields" | wc -l) +" \
       "$(echo "$ropt_fields" | wc -l) +" \
       "$(echo "$iopt_fields" | wc -l) +" \
       "$(echo "$sopt_fields" | wc -l) +" \
       "$(echo "$qopt_fields" | wc -l) +" \
       "$(echo "$dopt_fields" | wc -l) option fields," \
       "$(echo "$bench_bins" | wc -l) bench binaries documented)"
fi
exit "$fail"
