#!/usr/bin/env bash
# Docs lint: the operator guide must document the complete operator
# surface. Fails (exit 1) listing anything missing when
#   * a latent_mine command-line flag parsed in tools/latent_mine.cc, or
#   * a PipelineOptions field declared in src/api/latent.h
# does not appear in docs/OPERATIONS.md. Registered with ctest as
# `docs.lint` (label: docs); run directly as tools/docs_lint.sh [repo-root].
set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
mine_cc="$root/tools/latent_mine.cc"
api_h="$root/src/api/latent.h"
ops_md="$root/docs/OPERATIONS.md"

fail=0
for f in "$mine_cc" "$api_h" "$ops_md"; do
  if [ ! -f "$f" ]; then
    echo "docs_lint: missing $f" >&2
    exit 1
  fi
done

# Every string-literal flag the CLI compares against.
flags=$(grep -o '"--[a-z-]*"' "$mine_cc" | tr -d '"' | sort -u)

# Every field of struct PipelineOptions: strip comments, keep
# declaration lines (trailing ';', no parens => not Validate()), drop any
# default initializer, take the last identifier.
fields=$(awk '/^struct PipelineOptions \{/,/^\};/' "$api_h" \
  | sed -e 's|//.*||' \
  | grep -E ';[[:space:]]*$' \
  | grep -v '(' \
  | grep -vE '^[[:space:]]*\};[[:space:]]*$' \
  | sed -E 's/[[:space:]]*=[[:space:]]*[^;]*;//; s/;//; s/.*[ *]//' \
  | sort -u)

if [ -z "$flags" ] || [ -z "$fields" ]; then
  echo "docs_lint: extraction came up empty (flags or fields) —" \
       "the lint itself is broken, refusing to pass vacuously" >&2
  exit 1
fi

for flag in $flags; do
  if ! grep -q -- "$flag" "$ops_md"; then
    echo "docs_lint: latent_mine flag $flag is not documented in" \
         "docs/OPERATIONS.md" >&2
    fail=1
  fi
done

for field in $fields; do
  if ! grep -qw -- "$field" "$ops_md"; then
    echo "docs_lint: PipelineOptions::$field is not documented in" \
         "docs/OPERATIONS.md" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "docs_lint: OK ($(echo "$flags" | wc -l) flags," \
       "$(echo "$fields" | wc -l) fields documented)"
fi
exit "$fail"
