// Ablation bench for the design choices called out in DESIGN.md §5 that are
// not covered by the paper's own tables:
//  * EM vs collapsed Gibbs inference for the link-clustering model
//    (quality via NMI against planted areas, plus wall-clock).
//  * Background topic on/off for CATHYHIN.
//  * STROD vs anchor-word spectral recovery vs Gibbs LDA (the Section 2.1
//    discussion: the anchor method needs stronger assumptions and carries a
//    weaker error bound — visible as higher recovery error off-assumption).
//  * Greedy (Alg. 2) vs Viterbi segmentation agreement.
#include <cstdio>

#include "baselines/anchor_words.h"
#include "baselines/lda_gibbs.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "common/timer.h"
#include "core/doc_inference.h"
#include "core/gibbs_clusterer.h"
#include "data/lda_gen.h"
#include "eval/clustering_metrics.h"
#include "phrase/frequent_miner.h"
#include "phrase/segmenter.h"
#include "phrase/viterbi_segmenter.h"
#include "strod/strod.h"

int main() {
  using namespace latent;
  std::printf("Design-choice ablations (DESIGN.md section 5)\n");

  // ---- EM vs Gibbs link clustering; background on/off ----
  {
    data::HinDatasetOptions gopt = data::DblpLikeOptions(3000, 990);
    gopt.num_areas = 4;
    gopt.subareas_per_area = 1;
    data::HinDataset ds = data::GenerateHinDataset(gopt);
    hin::HeteroNetwork net = hin::BuildCollapsedNetwork(
        ds.corpus, ds.entity_type_names, ds.entity_type_sizes,
        ds.entity_docs);
    auto parent = core::DegreeDistributions(net);

    auto nmi_of = [&](const core::ClusterResult& model) {
      // Build a 1-level tree from the fit and assign docs.
      core::TopicHierarchy tree(net.type_names(), net.type_sizes());
      tree.AddRoot(parent, net.TotalWeight());
      for (int z = 0; z < model.k; ++z) {
        tree.AddChild(0, model.rho[z], model.phi[z], 1.0);
      }
      auto assignment =
          core::AssignDocumentsToLevel(tree, ds.corpus, ds.entity_docs, 1);
      return eval::NormalizedMutualInformation(assignment, ds.doc_area);
    };

    std::printf("\n== link clustering: EM vs Gibbs, background on/off ==\n");
    bench::PrintHeader({"variant", "NMI", "seconds"});
    {
      WallTimer t;
      core::ClusterOptions opt;
      opt.num_topics = 4;
      opt.background = true;
      opt.restarts = 2;
      opt.max_iters = 80;
      opt.seed = 5;
      core::ClusterResult r = core::FitCluster(net, parent, opt);
      bench::PrintRow("EM + background", {nmi_of(r), t.Seconds()});
    }
    {
      WallTimer t;
      core::ClusterOptions opt;
      opt.num_topics = 4;
      opt.background = false;
      opt.restarts = 2;
      opt.max_iters = 80;
      opt.seed = 5;
      core::ClusterResult r = core::FitCluster(net, parent, opt);
      bench::PrintRow("EM, no background", {nmi_of(r), t.Seconds()});
    }
    {
      WallTimer t;
      core::GibbsClusterOptions opt;
      opt.num_topics = 4;
      opt.iterations = 120;
      opt.seed = 5;
      core::ClusterResult r = core::FitClusterGibbs(net, opt);
      bench::PrintRow("collapsed Gibbs", {nmi_of(r), t.Seconds()});
    }
  }

  // ---- STROD vs anchor words vs Gibbs LDA ----
  {
    std::printf("\n== flat topic recovery: STROD vs anchors vs Gibbs ==\n");
    bench::PrintHeader({"method", "err (anchored)", "err (smooth)",
                        "seconds"},
                       16);
    // Two regimes: sparse topics (anchors exist) and smooth topics (the
    // anchor assumption fails).
    auto make = [&](double sparsity, uint64_t seed) {
      data::LdaGenOptions gopt;
      gopt.num_topics = 4;
      gopt.vocab_size = 200;
      gopt.num_docs = 3000;
      gopt.doc_length = 40;
      gopt.topic_sparsity = sparsity;
      gopt.seed = seed;
      return data::GenerateLdaDataset(gopt);
    };
    data::LdaDataset anchored = make(0.03, 991);
    data::LdaDataset smooth = make(0.8, 992);

    auto run_strod = [&](const data::LdaDataset& ds) {
      core::SpectralOptions opt;
      opt.num_topics = 4;
      opt.seed = 3;
      return MatchedL1Error(
          ds.true_topic_word,
          strod::FitStrod(ds.docs, ds.vocab_size, opt).topic_word);
    };
    auto run_anchor = [&](const data::LdaDataset& ds) {
      baselines::AnchorWordsOptions opt;
      opt.num_topics = 4;
      return MatchedL1Error(
          ds.true_topic_word,
          baselines::FitAnchorWords(ds.docs, ds.vocab_size, opt).topic_word);
    };
    auto run_gibbs = [&](const data::LdaDataset& ds) {
      baselines::LdaOptions opt;
      opt.num_topics = 4;
      opt.iterations = 120;
      opt.seed = 3;
      text::Corpus corpus = ds.ToCorpus();
      return MatchedL1Error(ds.true_topic_word,
                            baselines::FitLda(corpus, opt).topic_word);
    };
    WallTimer t1;
    double s1 = run_strod(anchored), s2 = run_strod(smooth);
    double ts = t1.Seconds();
    WallTimer t2;
    double a1 = run_anchor(anchored), a2 = run_anchor(smooth);
    double ta = t2.Seconds();
    WallTimer t3;
    double g1 = run_gibbs(anchored), g2 = run_gibbs(smooth);
    double tg = t3.Seconds();
    bench::PrintRow("STROD", {s1, s2, ts}, 16);
    bench::PrintRow("anchor words", {a1, a2, ta}, 16);
    bench::PrintRow("Gibbs LDA (120it)", {g1, g2, tg}, 16);
    std::printf("(paper discussion: the anchor method degrades when its "
                "anchor assumption fails — compare the two columns)\n");
  }

  // ---- greedy vs Viterbi segmentation ----
  {
    std::printf("\n== segmentation: greedy (Alg. 2) vs Viterbi ==\n");
    data::HinDatasetOptions gopt = data::DblpLikeOptions(3000, 993);
    gopt.with_entities = false;
    data::HinDataset ds = data::GenerateHinDataset(gopt);
    phrase::MinerOptions mopt;
    mopt.min_support = 5;
    phrase::PhraseDict dict1 = phrase::MineFrequentPhrases(ds.corpus, mopt);
    phrase::PhraseDict dict2 = dict1;
    WallTimer tg;
    auto greedy = phrase::SegmentCorpus(ds.corpus, &dict1,
                                        phrase::SegmenterOptions());
    double greedy_s = tg.Seconds();
    WallTimer tv;
    auto viterbi = phrase::ViterbiSegmentCorpus(ds.corpus, &dict2,
                                                phrase::ViterbiOptions());
    double viterbi_s = tv.Seconds();
    long long same = 0, total = 0;
    double g_instances = 0, v_instances = 0;
    for (int d = 0; d < ds.corpus.num_docs(); ++d) {
      g_instances += greedy[d].num_instances();
      v_instances += viterbi[d].num_instances();
      ++total;
      if (greedy[d].phrases == viterbi[d].phrases) ++same;
    }
    bench::PrintHeader({"metric", "greedy", "viterbi"});
    bench::PrintRow("seconds", {greedy_s, viterbi_s});
    bench::PrintRow("instances/doc",
                    {g_instances / total, v_instances / total});
    std::printf("identical partitions: %.1f%% of documents\n",
                100.0 * same / total);
  }
  return 0;
}
