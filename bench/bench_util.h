// Shared helpers for the experiment-reproduction benches: table printing,
// dataset subsetting, timing, and method wrappers used by several
// tables/figures.
#ifndef LATENT_BENCH_BENCH_UTIL_H_
#define LATENT_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/top_k.h"
#include "core/clusterer.h"
#include "core/hierarchy.h"
#include "data/synthetic_hin.h"
#include "hin/collapse.h"

namespace latent::bench {

/// Wall-clock stats for a repeated measurement. All timing in the bench
/// layer uses std::chrono::steady_clock (monotonic; never slews with wall
/// time adjustments — do NOT mix in high_resolution_clock, which is an
/// alias for a possibly non-monotonic clock on some platforms). Reporting
/// both the mean and the p50 makes rows comparable across runs: the median
/// shrugs off the occasional scheduler hiccup the mean absorbs.
struct TimingStats {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  int reps = 0;
};

/// Times `fn` `reps` times on steady_clock and reports mean + p50.
template <typename Fn>
TimingStats TimeKernel(int reps, Fn&& fn) {
  TimingStats stats;
  if (reps <= 0) return stats;
  std::vector<double> ms(reps);
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    ms[i] = std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  double total = 0.0;
  for (double v : ms) total += v;
  std::nth_element(ms.begin(), ms.begin() + reps / 2, ms.end());
  stats.mean_ms = total / reps;
  stats.p50_ms = ms[reps / 2];
  stats.reps = reps;
  return stats;
}

/// Prints a header row then dashes.
inline void PrintHeader(const std::vector<std::string>& cols, int width = 12) {
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf("%-*s", i == 0 ? 28 : width, cols[i].c_str());
  }
  std::printf("\n");
  int total = 28 + width * static_cast<int>(cols.size() - 1);
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

inline void PrintRow(const std::string& name, const std::vector<double>& vals,
                     int width = 12, const char* fmt = "%-*.4f") {
  std::printf("%-28s", name.c_str());
  for (double v : vals) std::printf(fmt, width, v);
  std::printf("\n");
}

/// Restricts a generated dataset to the documents of one planted area
/// (used for the "Database area" style sub-experiments). Universes are
/// preserved so node ids stay comparable.
inline data::HinDataset SubsetByAreas(const data::HinDataset& ds,
                                      const std::vector<int>& areas) {
  data::HinDataset out;
  out.num_areas = ds.num_areas;
  out.subareas_per_area = ds.subareas_per_area;
  out.word_area = ds.word_area;
  out.word_subarea = ds.word_subarea;
  out.entity0_subarea = ds.entity0_subarea;
  out.entity1_area = ds.entity1_area;
  out.subarea_phrases = ds.subarea_phrases;
  out.area_phrases = ds.area_phrases;
  out.entity_type_names = ds.entity_type_names;
  out.entity_type_sizes = ds.entity_type_sizes;
  for (int w = 0; w < ds.corpus.vocab_size(); ++w) {
    out.corpus.mutable_vocab().Intern(ds.corpus.vocab().Token(w));
  }
  for (int d = 0; d < ds.corpus.num_docs(); ++d) {
    bool keep = false;
    for (int a : areas) keep |= (ds.doc_area[d] == a);
    if (!keep) continue;
    out.corpus.AddDocumentIds(ds.corpus.docs()[d].tokens);
    if (!ds.entity_docs.empty()) out.entity_docs.push_back(ds.entity_docs[d]);
    out.doc_area.push_back(ds.doc_area[d]);
    out.doc_subarea.push_back(ds.doc_subarea[d]);
  }
  return out;
}

inline data::HinDataset SubsetByArea(const data::HinDataset& ds, int area) {
  data::HinDataset out;
  out.num_areas = ds.num_areas;
  out.subareas_per_area = ds.subareas_per_area;
  out.word_area = ds.word_area;
  out.word_subarea = ds.word_subarea;
  out.entity0_subarea = ds.entity0_subarea;
  out.entity1_area = ds.entity1_area;
  out.subarea_phrases = ds.subarea_phrases;
  out.area_phrases = ds.area_phrases;
  out.entity_type_names = ds.entity_type_names;
  out.entity_type_sizes = ds.entity_type_sizes;
  // Clone the vocabulary by interning in id order.
  for (int w = 0; w < ds.corpus.vocab_size(); ++w) {
    out.corpus.mutable_vocab().Intern(ds.corpus.vocab().Token(w));
  }
  for (int d = 0; d < ds.corpus.num_docs(); ++d) {
    if (ds.doc_area[d] != area) continue;
    out.corpus.AddDocumentIds(ds.corpus.docs()[d].tokens);
    if (!ds.entity_docs.empty()) out.entity_docs.push_back(ds.entity_docs[d]);
    out.doc_area.push_back(ds.doc_area[d]);
    out.doc_subarea.push_back(ds.doc_subarea[d]);
  }
  return out;
}

/// Top-K node-id lists per type from a fitted cluster's phi (K = 20 for
/// terms/entities, 3 for the last "venue-like" type, as in Section 3.3.1).
inline std::vector<std::vector<int>> TopNodesFromPhi(
    const std::vector<std::vector<double>>& phi_per_type, int k_main = 20,
    int k_last = 3) {
  std::vector<std::vector<int>> out(phi_per_type.size());
  for (size_t x = 0; x < phi_per_type.size(); ++x) {
    size_t k = (x + 1 == phi_per_type.size() && phi_per_type.size() > 1)
                   ? k_last
                   : k_main;
    for (const auto& [id, s] : TopKDense(phi_per_type[x], k)) {
      out[x].push_back(id);
    }
  }
  return out;
}

/// Builds a 1-level TopicHierarchy from flat per-topic word distributions
/// (for running KERT on top of flat models like NetClus or LDA).
inline core::TopicHierarchy FlatWordHierarchy(
    const std::vector<std::vector<double>>& topic_word,
    const std::vector<double>& rho, int vocab_size) {
  core::TopicHierarchy tree({"term"}, {vocab_size});
  std::vector<double> root(vocab_size, 0.0);
  for (size_t z = 0; z < topic_word.size(); ++z) {
    for (int w = 0; w < vocab_size; ++w) root[w] += topic_word[z][w];
  }
  double total = 0.0;
  for (double v : root) total += v;
  if (total > 0.0) {
    for (double& v : root) v /= total;
  }
  tree.AddRoot({root}, 1.0);
  for (size_t z = 0; z < topic_word.size(); ++z) {
    tree.AddChild(0, rho.empty() ? 1.0 / topic_word.size() : rho[z],
                  {topic_word[z]}, 1.0);
  }
  return tree;
}

}  // namespace latent::bench

#endif  // LATENT_BENCH_BENCH_UTIL_H_
