// Reproduces Table 4.4: nKQM@{5,10,20} across ranking methods, scored by
// three oracle judges with agreement weighting.
//
// Paper shape to reproduce (ordering, worst to best):
//   KERT-pop < kpRelInt* ~ KERT-con < kpRel < KERT-com ~ KERT < KERT-pur.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/kp_rank.h"
#include "bench_util.h"
#include "core/builder.h"
#include "eval/nkqm.h"
#include "eval/oracle_judge.h"
#include "phrase/frequent_miner.h"
#include "phrase/kert.h"

int main() {
  using namespace latent;
  std::printf("Table 4.4: nKQM@K by ranking method (oracle judges; "
              "see DESIGN.md Substitutions)\n\n");

  data::HinDatasetOptions gopt = data::DblpLikeOptions(6000, 51);
  gopt.num_areas = 4;
  gopt.subareas_per_area = 1;
  data::HinDataset ds = data::GenerateHinDataset(gopt);
  eval::OracleJudge judge(ds, 101);

  hin::HeteroNetwork net = hin::BuildTermCooccurrenceNetwork(ds.corpus);
  core::BuildOptions bopt;
  bopt.levels_k = {4};
  bopt.max_depth = 1;
  bopt.cluster.background = false;
  bopt.cluster.restarts = 3;
  bopt.cluster.max_iters = 80;
  bopt.cluster.seed = 33;
  core::TopicHierarchy tree = core::BuildHierarchy(net, bopt);

  phrase::MinerOptions mopt;
  mopt.min_support = 5;
  phrase::PhraseDict dict = phrase::MineFrequentPhrases(ds.corpus, mopt);
  phrase::KertScorer kert(ds.corpus, dict, tree);

  // Map each discovered topic to its dominant planted area via top words.
  auto topic_area = [&](int node) {
    std::vector<int> votes(ds.num_areas, 0);
    for (const auto& [w, s] : TopKDense(tree.node(node).phi[0], 15)) {
      if (ds.word_area[w] >= 0) ++votes[ds.word_area[w]];
    }
    int best = 0;
    for (int a = 1; a < ds.num_areas; ++a) {
      if (votes[a] > votes[best]) best = a;
    }
    return best;
  };

  // Collect all methods' rankings; the judged pool is their union (as in
  // the paper's IdealScore over all judged phrases).
  struct Method {
    std::string name;
    std::vector<eval::JudgedRanking> rankings;
  };
  std::vector<Method> methods;
  auto add_method = [&](const std::string& name, auto rank_fn) {
    Method m;
    m.name = name;
    for (int node : tree.NodesAtLevel(1)) {
      eval::JudgedRanking r;
      r.area = topic_area(node);
      for (const auto& [p, s] :
           static_cast<std::vector<Scored<int>>>(rank_fn(node))) {
        r.phrases.push_back(dict.Words(p));
      }
      m.rankings.push_back(std::move(r));
    }
    methods.push_back(std::move(m));
  };

  phrase::KertOptions base;
  auto kert_variant = [&](double gamma, double omega, bool use_pop) {
    return [&, gamma, omega, use_pop](int node) {
      phrase::KertOptions v = base;
      v.gamma = gamma;
      v.omega = omega;
      v.use_popularity = use_pop;
      return kert.RankTopic(node, v, 20);
    };
  };
  add_method("KERT-pop", kert_variant(0.5, 0.5, false));
  add_method("kpRelInt*", [&](int node) {
    return baselines::KpRelIntRank(kert, node, 20);
  });
  add_method("KERT-con", kert_variant(0.5, 0.0, true));
  add_method("kpRel",
             [&](int node) { return baselines::KpRelRank(kert, node, 20); });
  add_method("KERT-com", kert_variant(0.0, 0.5, true));
  add_method("KERT", kert_variant(0.5, 0.5, true));
  add_method("KERT-pur", kert_variant(0.5, 1.0, true));

  std::vector<std::pair<std::vector<int>, int>> pool;
  for (const Method& m : methods) {
    for (const eval::JudgedRanking& r : m.rankings) {
      for (const auto& p : r.phrases) pool.emplace_back(p, r.area);
    }
  }

  bench::PrintHeader({"method", "nKQM@5", "nKQM@10", "nKQM@20"});
  for (const Method& m : methods) {
    bench::PrintRow(m.name, {eval::Nkqm(judge, m.rankings, pool, 5),
                             eval::Nkqm(judge, m.rankings, pool, 10),
                             eval::Nkqm(judge, m.rankings, pool, 20)});
  }
  std::printf("\nPaper ordering: KERT-pop worst; kpRelInt* and KERT-con low; "
              "kpRel middle; KERT-com/KERT high; KERT-pur best.\n");
  return 0;
}
