// Reproduces the Section 7.4.2 robustness experiment: topic-recovery error
// (matched L1 distance to the planted topic-word distributions) versus
// sample size, and run-to-run variance, for STROD and Gibbs LDA. Also runs
// the STROD ablations called out in DESIGN.md: alpha0 learning on/off and
// randomized range finding vs more power iterations.
//
// Paper shape to reproduce: STROD's error decreases with sample size with a
// theoretical guarantee and ZERO run-to-run variance given the data (it is
// deterministic up to seeded probes); Gibbs error varies across chains.
//
// Also measures the run-control robustness layer itself: wall-clock
// overhead of hierarchy-build checkpointing at several snapshot cadences,
// and resume-from-checkpoint speedup over mining from scratch.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/latent.h"
#include "baselines/lda_gibbs.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "data/lda_gen.h"
#include "data/synthetic_hin.h"
#include "strod/strod.h"

namespace latent {
namespace {

data::LdaDataset MakeData(int docs, uint64_t seed) {
  data::LdaGenOptions gopt;
  gopt.num_topics = 5;
  gopt.vocab_size = 300;
  gopt.num_docs = docs;
  gopt.doc_length = 40;
  gopt.alpha0 = 1.0;
  gopt.topic_sparsity = 0.05;
  gopt.seed = seed;
  return data::GenerateLdaDataset(gopt);
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// One full pipeline run; returns wall-clock seconds.
double TimedMine(const data::HinDataset& ds, const api::PipelineOptions& opt) {
  api::PipelineInput input(
      ds.corpus, api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  auto t0 = std::chrono::steady_clock::now();
  StatusOr<api::MinedHierarchy> r = api::Mine(input, opt);
  double secs = SecondsSince(t0);
  if (!r.ok()) {
    std::fprintf(stderr, "bench run failed: %s\n",
                 r.status().message().c_str());
    std::exit(1);
  }
  return secs;
}

void BenchCheckpointing() {
  std::printf("\n== Checkpoint overhead & resume speedup (CATHYHIN) ==\n");
  data::HinDatasetOptions dopt = data::DblpLikeOptions(2000, 55);
  dopt.num_areas = 4;
  dopt.subareas_per_area = 3;
  data::HinDataset ds = data::GenerateHinDataset(dopt);

  api::PipelineOptions base;
  base.build.levels_k = {4, 3};
  base.build.max_depth = 2;
  base.build.cluster.seed = 7;
  base.miner.min_support = 4;
  base.exec.num_threads = 1;  // serial: overhead is not hidden by idle cores

  const std::string dir = "/tmp/latent_bench_ckpt";
  const int kReps = 3;  // best-of to damp filesystem noise
  auto best_of = [&](const api::PipelineOptions& opt) {
    double best = 1e100;
    for (int rep = 0; rep < kReps; ++rep) {
      ::system(("rm -rf " + dir).c_str());
      best = std::min(best, TimedMine(ds, opt));
    }
    return best;
  };

  const double scratch = best_of(base);
  bench::PrintHeader({"configuration", "wall s", "overhead %"}, 12);
  bench::PrintRow("no checkpointing", {scratch, 0.0});
  for (int every : {1, 8, 64}) {
    api::PipelineOptions opt = base;
    opt.checkpoint_dir = dir;
    opt.checkpoint_every_nodes = every;
    const double secs = best_of(opt);
    bench::PrintRow("checkpoint every " + std::to_string(every) + " nodes",
                    {secs, 100.0 * (secs - scratch) / scratch});
  }

  // Resume speedup: leave a full checkpoint behind, then mine again with
  // --resume semantics (every node fit replays from the snapshot).
  ::system(("rm -rf " + dir).c_str());
  api::PipelineOptions ckpt = base;
  ckpt.checkpoint_dir = dir;
  ckpt.checkpoint_every_nodes = 8;
  const double cold = TimedMine(ds, ckpt);
  api::PipelineOptions resume = ckpt;
  resume.resume = true;
  const double warm = TimedMine(ds, resume);
  ::system(("rm -rf " + dir).c_str());
  std::printf("\nresume vs scratch: scratch %.3fs, resumed %.3fs "
              "(%.1fx speedup; the resumed build replays every fit)\n",
              cold, warm, cold / warm);
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Section 7.4.2: recovery error and run-to-run variance\n\n");

  bench::PrintHeader({"#docs", "STROD err", "STROD sd", "Gibbs err",
                      "Gibbs sd"},
                     12);
  for (int docs : {500, 2000, 8000}) {
    data::LdaDataset ds = MakeData(docs, 801);
    // Three runs each with different algorithm seeds, same data.
    std::vector<double> strod_err, gibbs_err;
    for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      core::SpectralOptions sopt;
      sopt.num_topics = 5;
      sopt.alpha0 = 1.0;
      sopt.seed = seed;
      strod_err.push_back(MatchedL1Error(
          ds.true_topic_word,
          strod::FitStrod(ds.docs, ds.vocab_size, sopt).topic_word));

      baselines::LdaOptions lopt;
      lopt.num_topics = 5;
      lopt.iterations = 150;
      lopt.seed = seed;
      text::Corpus corpus = ds.ToCorpus();
      gibbs_err.push_back(MatchedL1Error(
          ds.true_topic_word, baselines::FitLda(corpus, lopt).topic_word));
    }
    auto stats = [](const std::vector<double>& v) {
      double mean = 0, var = 0;
      for (double x : v) mean += x;
      mean /= v.size();
      for (double x : v) var += (x - mean) * (x - mean);
      return std::make_pair(mean, std::sqrt(var / v.size()));
    };
    auto [sm, ss] = stats(strod_err);
    auto [gm, gs] = stats(gibbs_err);
    bench::PrintRow(std::to_string(docs), {sm, ss, gm, gs});
  }

  // Ablations on the mid-size corpus.
  std::printf("\n== STROD ablations (2000 docs) ==\n");
  data::LdaDataset ds = MakeData(2000, 802);
  bench::PrintHeader({"variant", "recovery err", "alpha0 chosen"}, 14);
  auto run = [&](const std::string& name, bool learn_a0, int power_iters,
                 double alpha0) {
    core::SpectralOptions sopt;
    sopt.num_topics = 5;
    sopt.alpha0 = alpha0;
    sopt.learn_alpha0 = learn_a0;
    sopt.subspace_iters = power_iters;
    sopt.seed = 5;
    strod::StrodResult r = strod::FitStrod(ds.docs, ds.vocab_size, sopt);
    bench::PrintRow(name, {MatchedL1Error(ds.true_topic_word, r.topic_word),
                           r.alpha0},
                    14);
  };
  run("alpha0 fixed (true 1.0)", false, 4, 1.0);
  run("alpha0 fixed (wrong 10)", false, 4, 10.0);
  run("alpha0 learned (grid)", true, 4, 1.0);
  run("range finder 0 iters", false, 0, 1.0);
  run("range finder 6 iters", false, 6, 1.0);
  std::printf("\nPaper shape: error shrinks with data; STROD stable across "
              "seeds; wrong alpha0 hurts and learning recovers it.\n");

  BenchCheckpointing();
  return 0;
}
