// Reproduces the Section 7.4.2 robustness experiment: topic-recovery error
// (matched L1 distance to the planted topic-word distributions) versus
// sample size, and run-to-run variance, for STROD and Gibbs LDA. Also runs
// the STROD ablations called out in DESIGN.md: alpha0 learning on/off and
// randomized range finding vs more power iterations.
//
// Paper shape to reproduce: STROD's error decreases with sample size with a
// theoretical guarantee and ZERO run-to-run variance given the data (it is
// deterministic up to seeded probes); Gibbs error varies across chains.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/lda_gibbs.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "data/lda_gen.h"
#include "strod/strod.h"

namespace latent {
namespace {

data::LdaDataset MakeData(int docs, uint64_t seed) {
  data::LdaGenOptions gopt;
  gopt.num_topics = 5;
  gopt.vocab_size = 300;
  gopt.num_docs = docs;
  gopt.doc_length = 40;
  gopt.alpha0 = 1.0;
  gopt.topic_sparsity = 0.05;
  gopt.seed = seed;
  return data::GenerateLdaDataset(gopt);
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Section 7.4.2: recovery error and run-to-run variance\n\n");

  bench::PrintHeader({"#docs", "STROD err", "STROD sd", "Gibbs err",
                      "Gibbs sd"},
                     12);
  for (int docs : {500, 2000, 8000}) {
    data::LdaDataset ds = MakeData(docs, 801);
    // Three runs each with different algorithm seeds, same data.
    std::vector<double> strod_err, gibbs_err;
    for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      strod::StrodOptions sopt;
      sopt.num_topics = 5;
      sopt.alpha0 = 1.0;
      sopt.seed = seed;
      strod_err.push_back(MatchedL1Error(
          ds.true_topic_word,
          strod::FitStrod(ds.docs, ds.vocab_size, sopt).topic_word));

      baselines::LdaOptions lopt;
      lopt.num_topics = 5;
      lopt.iterations = 150;
      lopt.seed = seed;
      text::Corpus corpus = ds.ToCorpus();
      gibbs_err.push_back(MatchedL1Error(
          ds.true_topic_word, baselines::FitLda(corpus, lopt).topic_word));
    }
    auto stats = [](const std::vector<double>& v) {
      double mean = 0, var = 0;
      for (double x : v) mean += x;
      mean /= v.size();
      for (double x : v) var += (x - mean) * (x - mean);
      return std::make_pair(mean, std::sqrt(var / v.size()));
    };
    auto [sm, ss] = stats(strod_err);
    auto [gm, gs] = stats(gibbs_err);
    bench::PrintRow(std::to_string(docs), {sm, ss, gm, gs});
  }

  // Ablations on the mid-size corpus.
  std::printf("\n== STROD ablations (2000 docs) ==\n");
  data::LdaDataset ds = MakeData(2000, 802);
  bench::PrintHeader({"variant", "recovery err", "alpha0 chosen"}, 14);
  auto run = [&](const std::string& name, bool learn_a0, int power_iters,
                 double alpha0) {
    strod::StrodOptions sopt;
    sopt.num_topics = 5;
    sopt.alpha0 = alpha0;
    sopt.learn_alpha0 = learn_a0;
    sopt.subspace_iters = power_iters;
    sopt.seed = 5;
    strod::StrodResult r = strod::FitStrod(ds.docs, ds.vocab_size, sopt);
    bench::PrintRow(name, {MatchedL1Error(ds.true_topic_word, r.topic_word),
                           r.alpha0},
                    14);
  };
  run("alpha0 fixed (true 1.0)", false, 4, 1.0);
  run("alpha0 fixed (wrong 10)", false, 4, 10.0);
  run("alpha0 learned (grid)", true, 4, 1.0);
  run("range finder 0 iters", false, 0, 1.0);
  run("range finder 6 iters", false, 6, 1.0);
  std::printf("\nPaper shape: error shrinks with data; STROD stable across "
              "seeds; wrong alpha0 hurts and learning recovers it.\n");
  return 0;
}
