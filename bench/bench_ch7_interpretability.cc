// Reproduces the Section 7.4.3 interpretability study: recursive STROD
// builds a topic tree over the DBLP-like corpus; the tree's nodes should
// align with the planted area/subarea structure (the paper shows CS-area
// hierarchies comparable to Gibbs-based trees at a fraction of the cost).
#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "strod/spectral_backend.h"
#include "strod/strod.h"

int main() {
  using namespace latent;
  std::printf("Section 7.4.3: recursive STROD topic tree (DBLP-like)\n\n");

  data::HinDatasetOptions gopt = data::DblpLikeOptions(6000, 901);
  gopt.num_areas = 4;
  gopt.subareas_per_area = 3;
  gopt.with_entities = false;
  gopt.min_phrases_per_doc = 4;
  gopt.max_phrases_per_doc = 8;
  data::HinDataset ds = data::GenerateHinDataset(gopt);

  WallTimer timer;
  core::BuildOptions bopt;
  bopt.levels_k = {4, 3};
  bopt.max_depth = 2;
  bopt.min_network_weight = 800.0;
  bopt.cluster.seed = 33;
  core::InferenceOptions iopt;
  iopt.backend = core::InferenceBackendKind::kSpectral;
  iopt.spectral.alpha0 = 1.0;
  iopt.spectral.seed = 33;
  StatusOr<core::TopicHierarchy> tree_or = strod::TryBuildSpectralHierarchy(
      strod::ToSparseDocs(ds.corpus), ds.corpus.vocab_size(), bopt, iopt);
  if (!tree_or.ok()) {
    std::fprintf(stderr, "spectral hierarchy failed: %s\n",
                 tree_or.status().message().c_str());
    return 1;
  }
  core::TopicHierarchy& tree = tree_or.value();
  double secs = timer.Seconds();

  // Print the tree with each node's top words and its dominant planted
  // area/subarea for verification.
  for (int id = 0; id < tree.num_nodes(); ++id) {
    const core::TopicNode& n = tree.node(id);
    std::printf("%*s%s:", 2 * n.level, "", n.path.c_str());
    int votes_area[16] = {0};
    for (const auto& [w, p] : TopKDense(n.phi[0], 6)) {
      std::printf(" %s", ds.corpus.vocab().Token(w).c_str());
      if (ds.word_area[w] >= 0) ++votes_area[ds.word_area[w]];
    }
    int best = 0;
    for (int a = 1; a < ds.num_areas; ++a) {
      if (votes_area[a] > votes_area[best]) best = a;
    }
    if (id != tree.root()) {
      std::printf("   [dominant planted area %d, %d/6 words]", best,
                  votes_area[best]);
    }
    std::printf("\n");
  }
  std::printf("\nbuilt in %.2f s; paper shape: level-1 nodes match areas, "
              "level-2 nodes match subareas.\n", secs);
  return 0;
}
