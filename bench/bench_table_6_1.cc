// Reproduces the Section 6.1.6 experiments: advisor-advisee prediction
// accuracy of TPFG versus the local heuristics (RULE / Kulczynski / IR) on
// three planted collaboration networks of growing size, plus the R1-R4
// filtering-rule ablation and the P@(k, theta) sweep.
//
// Paper shape to reproduce: TPFG is the most accurate (~80-84% on the real
// DBLP sets; higher here because the generator plants exactly the model's
// signals); heuristics trail; accuracy degrades gracefully with noise; the
// filtering rules prune candidates without hurting recall much.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/advisor_heuristics.h"
#include "bench_util.h"
#include "data/advisor_gen.h"
#include "eval/relation_metrics.h"
#include "relation/tpfg.h"
#include "relation/tpfg_preprocess.h"

namespace latent {
namespace {

void RunNetwork(const char* title, const data::AdvisorGenOptions& gopt) {
  data::AdvisorDataset ds = data::GenerateAdvisorDataset(gopt);
  std::printf("\n== %s: %d authors, %zu edges, noise=%.2f ==\n", title,
              ds.num_authors, ds.network->edges().size(),
              gopt.noise_collab_rate);

  relation::PreprocessOptions popt;
  relation::CandidateDag dag = relation::BuildCandidateDag(*ds.network, popt);

  bench::PrintHeader({"method", "accuracy", "precision", "recall", "F1"});
  auto report = [&](const std::string& name, const std::vector<int>& pred) {
    auto m = eval::EvaluateAdvisorPredictions(pred, ds.true_advisor);
    bench::PrintRow(name, {m.accuracy, m.precision, m.recall, m.f1});
  };
  report("RULE (local likelihood)",
         baselines::PredictAdvisorsHeuristic(
             *ds.network, dag, baselines::AdvisorHeuristic::kLocalLikelihood));
  report("Kulczynski",
         baselines::PredictAdvisorsHeuristic(
             *ds.network, dag, baselines::AdvisorHeuristic::kKulczynski));
  report("IR", baselines::PredictAdvisorsHeuristic(
                   *ds.network, dag,
                   baselines::AdvisorHeuristic::kImbalanceRatio));
  relation::TpfgResult tpfg = relation::RunTpfg(dag, relation::TpfgOptions());
  report("TPFG", tpfg.predicted);

  // P@(k, theta) sweep.
  std::printf("\nP@(k,theta) accuracy sweep (TPFG scores):\n");
  bench::PrintHeader({"k \\ theta", "0.3", "0.5", "0.7"});
  for (int k = 1; k <= 3; ++k) {
    std::vector<double> row;
    for (double theta : {0.3, 0.5, 0.7}) {
      auto pred = relation::PredictAtK(dag, tpfg, k, theta);
      row.push_back(
          eval::EvaluateAdvisorPredictions(pred, ds.true_advisor).accuracy);
    }
    bench::PrintRow("k=" + std::to_string(k), row);
  }
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Section 6.1.6: TPFG vs local heuristics on planted advisor "
              "forests (see DESIGN.md Substitutions)\n");

  data::AdvisorGenOptions small;
  small.num_root_advisors = 15;
  small.generations = 2;
  small.noise_collab_rate = 0.25;
  small.seed = 501;
  RunNetwork("TEST1 analogue", small);

  data::AdvisorGenOptions medium;
  medium.num_root_advisors = 40;
  medium.generations = 2;
  medium.noise_collab_rate = 0.4;
  medium.seed = 502;
  RunNetwork("TEST2 analogue", medium);

  data::AdvisorGenOptions large;
  large.num_root_advisors = 80;
  large.generations = 2;
  large.noise_collab_rate = 0.6;
  large.seed = 503;
  RunNetwork("TEST3 analogue (noisiest)", large);

  // Filtering-rule ablation on the medium network.
  std::printf("\n== Filtering-rule ablation (TEST2 analogue) ==\n");
  data::AdvisorDataset ds = data::GenerateAdvisorDataset(medium);
  bench::PrintHeader({"rules", "accuracy", "avg candidates"});
  auto ablate = [&](const std::string& name, bool r1, bool r2, bool r3,
                    bool r4) {
    relation::PreprocessOptions p;
    p.rule_r1 = r1;
    p.rule_r2 = r2;
    p.rule_r3 = r3;
    p.rule_r4 = r4;
    relation::CandidateDag dag = relation::BuildCandidateDag(*ds.network, p);
    double cands = 0;
    for (const auto& c : dag.candidates) cands += c.size() - 1.0;
    relation::TpfgResult r = relation::RunTpfg(dag, relation::TpfgOptions());
    auto m = eval::EvaluateAdvisorPredictions(r.predicted, ds.true_advisor);
    bench::PrintRow(name, {m.accuracy, cands / ds.num_authors});
  };
  ablate("all rules (R1-R4)", true, true, true, true);
  ablate("no R1 (IR sign)", false, true, true, true);
  ablate("no R2 (kulc increase)", true, false, true, true);
  ablate("no R3 (1-year)", true, true, false, true);
  ablate("no R4 (2-year head)", true, true, true, false);
  ablate("no rules", false, false, false, false);
  return 0;
}
