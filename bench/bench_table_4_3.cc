// Reproduces Table 4.3: top-10 ranked keyphrases of one topic under the
// ranking-function variants — kpRel, kpRelInt*, KERT-pop, KERT-pur,
// KERT-con, KERT-com, and full KERT.
//
// Paper shape to reproduce: kpRel/kpRelInt* favor unigrams; KERT-pop is
// noise; KERT-pur is all long phrases; KERT-con resembles kpRelInt*;
// KERT-com lets incomplete sub-phrases through; KERT mixes high-quality
// phrases of all lengths.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/kp_rank.h"
#include "bench_util.h"
#include "core/builder.h"
#include "phrase/frequent_miner.h"
#include "phrase/kert.h"

int main() {
  using namespace latent;
  std::printf("Table 4.3: top-10 keyphrases of one topic by ranking variant\n"
              "(DBLP-like titles; synthetic stand-in, see DESIGN.md)\n\n");

  data::HinDatasetOptions gopt = data::DblpLikeOptions(6000, 50);
  gopt.num_areas = 5;
  gopt.subareas_per_area = 1;  // five flat topics, as in the user study
  data::HinDataset ds = data::GenerateHinDataset(gopt);

  // Text-only CATHY with k = 5 flat topics.
  hin::HeteroNetwork net = hin::BuildTermCooccurrenceNetwork(ds.corpus);
  core::BuildOptions bopt;
  bopt.levels_k = {5};
  bopt.max_depth = 1;
  bopt.cluster.background = false;
  bopt.cluster.restarts = 3;
  bopt.cluster.max_iters = 80;
  bopt.cluster.seed = 31;
  core::TopicHierarchy tree = core::BuildHierarchy(net, bopt);

  phrase::MinerOptions mopt;
  mopt.min_support = 5;
  phrase::PhraseDict dict = phrase::MineFrequentPhrases(ds.corpus, mopt);
  phrase::KertScorer kert(ds.corpus, dict, tree);

  const int topic = tree.NodesAtLevel(1)[0];

  auto print_list = [&](const std::string& name,
                        const std::vector<Scored<int>>& ranked) {
    std::printf("%-12s:", name.c_str());
    for (const auto& [p, s] : ranked) {
      std::printf(" [%s]", dict.ToString(p, ds.corpus.vocab()).c_str());
    }
    std::printf("\n\n");
  };

  print_list("kpRel", baselines::KpRelRank(kert, topic, 10));
  print_list("kpRelInt*", baselines::KpRelIntRank(kert, topic, 10));

  phrase::KertOptions kopt;  // full KERT: gamma=0.5, omega=0.5
  auto variant = [&](double gamma, double omega, bool use_pop) {
    phrase::KertOptions v = kopt;
    v.gamma = gamma;
    v.omega = omega;
    v.use_popularity = use_pop;
    return kert.RankTopic(topic, v, 10);
  };
  print_list("KERT-pop", variant(0.5, 0.5, false));
  print_list("KERT-pur", variant(0.5, 1.0, true));
  print_list("KERT-con", variant(0.5, 0.0, true));
  print_list("KERT-com", variant(0.0, 0.5, true));
  print_list("KERT", variant(0.5, 0.5, true));

  // Quantitative sanity: average phrase length per variant (paper's
  // described biases).
  auto avg_len = [&](const std::vector<Scored<int>>& ranked) {
    if (ranked.empty()) return 0.0;
    double total = 0;
    for (const auto& [p, s] : ranked) total += dict.Length(p);
    return total / ranked.size();
  };
  bench::PrintHeader({"variant", "avg length"});
  bench::PrintRow("kpRel", {avg_len(baselines::KpRelRank(kert, topic, 10))});
  bench::PrintRow("kpRelInt*",
                  {avg_len(baselines::KpRelIntRank(kert, topic, 10))});
  bench::PrintRow("KERT-pur (omega=1)", {avg_len(variant(0.5, 1.0, true))});
  bench::PrintRow("KERT-con (omega=0)", {avg_len(variant(0.5, 0.0, true))});
  bench::PrintRow("KERT", {avg_len(variant(0.5, 0.5, true))});
  return 0;
}
