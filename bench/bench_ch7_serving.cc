// Serving-throughput bench for the latent::serve read path (the ROADMAP's
// "serve heavy traffic" north star): queries/sec over one immutable
// HierarchyIndex snapshot, single- vs 8-threaded batch fan-out, cold vs
// warm result cache, and with the cache disabled — same table shape as the
// other ch7 benches.
//
// Expected shape: warm-cache throughput should beat cold by a wide margin
// (hits skip rendering entirely), cache-off should sit near cold, and the
// 8-thread rows scale with available cores (on a single-core container
// they measure the same work plus pool overhead; answers are
// byte-identical in every configuration by construction).
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/latent.h"
#include "bench_util.h"
#include "common/check.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "data/synthetic_hin.h"
#include "serve/engine.h"

using namespace latent;

namespace {

// One deterministic mixed workload over the index, with no duplicate
// requests: every topic looked up and walked, every 2nd phrase searched by
// its own text, every entity of each type resolved. Because each request
// is unique, a single pass on a fresh engine never hits the cache (cold)
// while a repeat of the same batch always does (warm).
std::vector<serve::Request> BuildWorkload(const serve::HierarchyIndex& index) {
  std::vector<serve::Request> out;
  for (int id = 0; id < index.num_topics(); ++id) {
    out.push_back({serve::RequestKind::kLookup, index.topic(id).path, -1});
    out.push_back({serve::RequestKind::kSubtree, index.topic(id).path, 1});
  }
  for (int p = 0; p < index.num_phrases(); p += 2) {
    out.push_back({serve::RequestKind::kSearch, index.phrase_text(p), 10});
  }
  for (int type = 1; type < index.num_types(); ++type) {
    const std::string& type_name = index.type_names()[type];
    for (int e = 0; e < index.type_sizes()[type]; ++e) {
      out.push_back({serve::RequestKind::kEntity,
                     type_name + ":" + index.name(type, e), 10});
    }
  }
  return out;
}

struct RunResult {
  double cold_qps = 0.0;
  double warm_qps = 0.0;
};

RunResult Measure(const api::MinedHierarchy& mined,
                  const std::vector<serve::Request>& workload, int threads,
                  long long cache_bytes) {
  exec::ExecOptions eopt;
  eopt.num_threads = threads;
  exec::Executor ex(eopt);
  serve::QueryOptions qopt;
  qopt.cache_bytes = cache_bytes;

  // Cold: each round gets a fresh engine (empty cache), built outside the
  // timed region; only the first-touch batch is measured.
  constexpr int kColdRounds = 5;
  std::vector<std::unique_ptr<serve::QueryEngine>> engines;
  for (int r = 0; r < kColdRounds; ++r) {
    StatusOr<serve::HierarchyIndex> index = mined.MakeIndex();
    LATENT_CHECK_MSG(index.ok(), "bench index must build");
    auto engine =
        serve::QueryEngine::Create(std::move(index.value()), qopt, &ex);
    LATENT_CHECK_MSG(engine.ok(), "bench engine must build");
    engines.push_back(std::move(engine.value()));
  }
  RunResult result;
  WallTimer timer;
  for (auto& engine : engines) engine->RunBatch(workload);
  result.cold_qps = kColdRounds * workload.size() / timer.Seconds();

  // Warm: repeat the identical batch on one engine; with a cache every
  // request is a hit, without one this re-measures the render path.
  constexpr int kWarmRounds = 15;
  timer.Restart();
  for (int r = 0; r < kWarmRounds; ++r) engines[0]->RunBatch(workload);
  result.warm_qps = kWarmRounds * workload.size() / timer.Seconds();
  return result;
}

}  // namespace

int main() {
  std::printf("Serving throughput over one mined hierarchy snapshot\n"
              "(queries/sec; warm = repeat of the same batch, so with a\n"
              "cache it measures the hit path)\n\n");

  data::HinDatasetOptions gopt;
  gopt.num_areas = 4;
  gopt.subareas_per_area = 3;
  gopt.num_docs = 1500;
  gopt.seed = 77;
  data::HinDataset ds = data::GenerateHinDataset(gopt);

  api::PipelineOptions opt;
  opt.build.levels_k = {4, 3};
  opt.build.max_depth = 2;
  opt.miner.min_support = 5;
  api::PipelineInput input(
      ds.corpus,
      api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  WallTimer mine_timer;
  StatusOr<api::MinedHierarchy> mined = api::Mine(input, opt);
  LATENT_CHECK_MSG(mined.ok(), "bench corpus must mine");
  const double mine_s = mine_timer.Seconds();

  WallTimer index_timer;
  StatusOr<serve::HierarchyIndex> probe = mined.value().MakeIndex();
  LATENT_CHECK_MSG(probe.ok(), "bench index must build");
  const double index_s = index_timer.Seconds();
  std::printf("mined %d topics in %.2fs; index build %.3fs "
              "(%d phrases, %d types)\n\n",
              probe.value().num_topics(), mine_s, index_s,
              probe.value().num_phrases(), probe.value().num_types());

  const std::vector<serve::Request> workload = BuildWorkload(probe.value());
  std::printf("workload: %zu distinct queries "
              "(lookup/subtree/search/entity mix)\n\n",
              workload.size());

  bench::PrintHeader({"configuration", "cold q/s", "warm q/s"}, 14);
  for (int threads : {1, 8}) {
    for (long long cache_bytes : {0ll, 16ll << 20}) {
      RunResult r =
          Measure(mined.value(), workload, threads, cache_bytes);
      const std::string name = std::to_string(threads) + " thread" +
                               (threads > 1 ? "s" : "") +
                               (cache_bytes > 0 ? ", cache 16MB" :
                                                  ", cache off");
      bench::PrintRow(name, {r.cold_qps, r.warm_qps}, 14, "%-*.0f");
    }
  }
  std::printf("\nAnswers are byte-identical across every row "
              "(serve_test pins this); only the wall time moves.\n");
  return 0;
}
