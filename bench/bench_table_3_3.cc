// Reproduces Table 3.3: HPMI on the NEWS-like network (16 stories with
// noisy extracted person/location entities) — the full collection and a
// 4-story subset.
//
// Paper shape to reproduce: TopK < NetClus << CATHYHIN variants on every
// link type, with CATHYHIN(learn weight) the best Overall.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/entity_lda.h"
#include "baselines/netclus.h"
#include "baselines/topk_baseline.h"
#include "bench_util.h"
#include "core/clusterer.h"
#include "eval/hpmi.h"

namespace latent {
namespace {

void RunDataset(const data::HinDataset& ds, int k, const char* title) {
  std::printf("\n== %s (k=%d, %d docs) ==\n", title, k, ds.corpus.num_docs());
  eval::HpmiEvaluator hpmi(ds.corpus, ds.entity_type_sizes, ds.entity_docs);
  bench::PrintHeader({"method", "Term-Term", "Term-Pers", "Pers-Pers",
                      "Term-Loc", "Pers-Loc", "Loc-Loc", "Overall"},
                     11);
  auto report = [&](const std::string& name,
                    const std::vector<std::vector<std::vector<int>>>& topics) {
    auto pt = hpmi.PerTypeAverage(topics);
    bench::PrintRow(name,
                    {pt[0][0], pt[0][1], pt[1][1], pt[0][2], pt[1][2],
                     pt[2][2], hpmi.AverageOverall(topics)},
                    11);
  };

  hin::HeteroNetwork net = hin::BuildCollapsedNetwork(
      ds.corpus, ds.entity_type_names, ds.entity_type_sizes, ds.entity_docs);
  report("TopK", {baselines::TopKPseudoTopic(net, 10)});

  baselines::NetClusOptions nopt;
  nopt.num_clusters = k;
  nopt.smoothing = 0.5;
  nopt.max_iters = 30;
  nopt.seed = 17;
  baselines::NetClusResult nc = baselines::RunNetClus(
      ds.corpus, ds.entity_type_sizes, ds.entity_docs, nopt);
  std::vector<std::vector<std::vector<int>>> nc_topics;
  for (int z = 0; z < k; ++z) {
    nc_topics.push_back(bench::TopNodesFromPhi(nc.phi[z], 10, 6));
  }
  report("NetClus", nc_topics);

  // Entity-enriched LDA (Section 2.2.3 category iii baseline).
  {
    baselines::EntityLdaOptions eopt;
    eopt.num_topics = k;
    eopt.iterations = 60;
    eopt.seed = 29;
    baselines::EntityLdaResult el = baselines::FitEntityLda(
        ds.corpus, ds.entity_type_sizes, ds.entity_docs, eopt);
    std::vector<std::vector<std::vector<int>>> el_topics;
    for (int z = 0; z < k; ++z) {
      el_topics.push_back(bench::TopNodesFromPhi(el.phi[z], 10, 6));
    }
    report("EntityLDA", el_topics);
  }

  auto run_cathyhin = [&](core::LinkWeightMode mode, const std::string& name) {
    core::ClusterOptions copt;
    copt.num_topics = k;
    copt.background = true;
    copt.weight_mode = mode;
    copt.restarts = 2;
    copt.max_iters = 80;
    copt.seed = 23;
    core::ClusterResult r =
        core::FitCluster(net, core::DegreeDistributions(net), copt);
    std::vector<std::vector<std::vector<int>>> topics;
    for (int z = 0; z < k; ++z) {
      topics.push_back(bench::TopNodesFromPhi(r.phi[z], 10, 6));
    }
    report(name, topics);
  };
  run_cathyhin(core::LinkWeightMode::kEqual, "CATHYHIN (equal weight)");
  run_cathyhin(core::LinkWeightMode::kNormalized, "CATHYHIN (norm weight)");
  run_cathyhin(core::LinkWeightMode::kLearned, "CATHYHIN (learn weight)");
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Table 3.3: HPMI on the NEWS-like network "
              "(synthetic stand-in; see DESIGN.md)\n");
  data::HinDataset full =
      data::GenerateHinDataset(data::NewsLikeOptions(5000, 43));
  RunDataset(full, /*k=*/16, "NEWS (16 stories analogue)");
  data::HinDataset sub = bench::SubsetByAreas(full, {0, 1, 2, 3});
  RunDataset(sub, /*k=*/4, "NEWS (4-story subset analogue)");
  return 0;
}
