// Reproduces Table 3.5: intruder-detection tasks (phrase / entity / topic,
// % correctly identified) across methods, judged by the oracle annotators.
//
// Methods: CATHYHIN (phrases + entities), CATHYHIN1 (unigram patterns),
// CATHY (text only), CATHY1, CATHY+heuristic entity ranking, NetClus with
// KERT phrases, and plain NetClus (unigrams).
//
// Paper shape to reproduce: CATHYHIN highest everywhere; phrase variants
// beat their unigram counterparts; NetClus variants trail.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/netclus.h"
#include "bench_util.h"
#include "core/builder.h"
#include "eval/intrusion.h"
#include "eval/oracle_judge.h"
#include "phrase/frequent_miner.h"
#include "phrase/kert.h"

namespace latent {
namespace {

struct MethodTopics {
  std::string name;
  // Per level-1 topic: phrase items (as word-id sequences).
  std::vector<std::vector<std::vector<int>>> phrases;
  // Per level-1 topic, per entity type (0/1): entity ids.
  std::vector<std::vector<std::vector<int>>> entities;
  // Topic-intrusion items: per PARENT topic, the affinity vectors of its
  // child topics (built from their top phrases).
  std::vector<eval::IntrusionTopic> child_groups;
};

// Turns per-topic top phrases into intrusion items via oracle affinities.
std::vector<eval::IntrusionTopic> PhraseItems(
    const eval::OracleJudge& judge,
    const std::vector<std::vector<std::vector<int>>>& topic_phrases) {
  std::vector<eval::IntrusionTopic> out(topic_phrases.size());
  for (size_t t = 0; t < topic_phrases.size(); ++t) {
    for (const auto& p : topic_phrases[t]) {
      out[t].item_affinities.push_back(judge.PhraseAreaAffinity(p));
    }
  }
  return out;
}

std::vector<eval::IntrusionTopic> EntityItems(
    const eval::OracleJudge& judge,
    const std::vector<std::vector<std::vector<int>>>& topic_entities,
    int entity_type) {
  std::vector<eval::IntrusionTopic> out(topic_entities.size());
  for (size_t t = 0; t < topic_entities.size(); ++t) {
    for (int e : topic_entities[t][entity_type]) {
      out[t].item_affinities.push_back(
          judge.EntityAreaAffinity(entity_type, e));
    }
  }
  return out;
}

// Top phrases of each level-1 node of a hierarchy, with optional unigram
// restriction.
std::vector<std::vector<std::vector<int>>> HierarchyPhrases(
    const core::TopicHierarchy& tree, const phrase::KertScorer& kert,
    const phrase::PhraseDict& dict, int max_len, size_t k) {
  std::vector<std::vector<std::vector<int>>> out;
  phrase::KertOptions kopt;
  for (int node : tree.NodesAtLevel(1)) {
    std::vector<std::vector<int>> items;
    // Over-fetch, then filter by length.
    size_t fetch = max_len == 1 ? 400 : k * 4;
    for (const auto& [p, s] : kert.RankTopic(node, kopt, fetch)) {
      if (dict.Length(p) <= max_len) items.push_back(dict.Words(p));
      if (items.size() >= k) break;
    }
    out.push_back(std::move(items));
  }
  return out;
}

// Child-topic affinity groups for the topic-intrusion task: for each
// level-1 node, its children's mean top-phrase affinities.
std::vector<eval::IntrusionTopic> ChildGroups(
    const core::TopicHierarchy& tree, const phrase::KertScorer& kert,
    const phrase::PhraseDict& dict, const eval::OracleJudge& judge) {
  std::vector<eval::IntrusionTopic> out;
  phrase::KertOptions kopt;
  for (int parent : tree.NodesAtLevel(1)) {
    eval::IntrusionTopic group;
    for (int child : tree.node(parent).children) {
      std::vector<double> mean(judge.num_areas(), 0.0);
      int n = 0;
      for (const auto& [p, s] : kert.RankTopic(child, kopt, 5)) {
        auto aff = judge.PhraseAreaAffinity(dict.Words(p));
        for (size_t a = 0; a < aff.size(); ++a) mean[a] += aff[a];
        ++n;
      }
      if (n > 0) {
        for (double& v : mean) v /= n;
        group.item_affinities.push_back(std::move(mean));
      }
    }
    if (group.item_affinities.size() >= 2) out.push_back(std::move(group));
  }
  return out;
}

}  // namespace
}  // namespace latent

namespace latent {
namespace {

void RunBlock(bool news) {
  std::printf("\n== %s analogue ==\n", news ? "NEWS" : "DBLP");

  data::HinDatasetOptions gopt;
  if (news) {
    gopt = data::NewsLikeOptions(5000, 55);
    gopt.num_areas = 8;
    gopt.subareas_per_area = 2;
  } else {
    gopt = data::DblpLikeOptions(5000, 45);
    gopt.num_areas = 5;
    gopt.subareas_per_area = 3;
  }
  gopt.entities1_per_area = 6;
  data::HinDataset ds = data::GenerateHinDataset(gopt);
  eval::OracleJudge judge(ds, 99);

  phrase::MinerOptions mopt;
  mopt.min_support = 5;
  phrase::PhraseDict dict = phrase::MineFrequentPhrases(ds.corpus, mopt);

  // --- CATHYHIN hierarchy (full heterogeneous network).
  hin::HeteroNetwork hin_net = hin::BuildCollapsedNetwork(
      ds.corpus, ds.entity_type_names, ds.entity_type_sizes, ds.entity_docs);
  core::BuildOptions bopt;
  bopt.levels_k = {gopt.num_areas, news ? 2 : 3};
  bopt.max_depth = 2;
  bopt.cluster.background = true;
  bopt.cluster.weight_mode = core::LinkWeightMode::kLearned;
  bopt.cluster.restarts = 2;
  bopt.cluster.max_iters = 60;
  bopt.cluster.seed = 3;
  core::TopicHierarchy hin_tree = core::BuildHierarchy(hin_net, bopt);
  phrase::KertScorer hin_kert(ds.corpus, dict, hin_tree);

  // --- CATHY hierarchy (text only).
  hin::HeteroNetwork text_net = hin::BuildTermCooccurrenceNetwork(ds.corpus);
  core::BuildOptions topt = bopt;
  topt.cluster.background = false;
  topt.cluster.weight_mode = core::LinkWeightMode::kEqual;
  core::TopicHierarchy text_tree = core::BuildHierarchy(text_net, topt);
  phrase::KertScorer text_kert(ds.corpus, dict, text_tree);

  // --- NetClus (flat; hierarchy shape from recursive application skipped:
  // flat children groups are built by re-clustering each cluster).
  baselines::NetClusOptions nopt;
  nopt.num_clusters = gopt.num_areas;
  nopt.max_iters = 30;
  nopt.seed = 9;
  baselines::NetClusResult nc = baselines::RunNetClus(
      ds.corpus, ds.entity_type_sizes, ds.entity_docs, nopt);
  std::vector<std::vector<double>> nc_word(gopt.num_areas);
  for (int z = 0; z < gopt.num_areas; ++z) nc_word[z] = nc.phi[z][0];
  core::TopicHierarchy nc_tree =
      bench::FlatWordHierarchy(nc_word, {}, ds.corpus.vocab_size());
  phrase::KertScorer nc_kert(ds.corpus, dict, nc_tree);

  // Entity lists per level-1 topic for entity intrusion.
  auto entity_lists = [&](const core::TopicHierarchy& tree) {
    std::vector<std::vector<std::vector<int>>> out;
    for (int node : tree.NodesAtLevel(1)) {
      std::vector<std::vector<int>> per_type(2);
      for (int x = 1; x <= 2; ++x) {
        for (const auto& [e, s] : TopKDense(tree.node(node).phi[x], 8)) {
          if (s > 1e-6) per_type[x - 1].push_back(e);
        }
      }
      out.push_back(std::move(per_type));
    }
    return out;
  };
  // Heuristic entity ranking on the CATHY text hierarchy: score an entity
  // by its link weight to the topic's top words (CATHY-heur-HIN).
  auto heuristic_entities = [&]() {
    std::vector<std::vector<std::vector<int>>> out;
    phrase::KertOptions kopt;
    for (int node : text_tree.NodesAtLevel(1)) {
      std::vector<double> top_word_w(ds.corpus.vocab_size(), 0.0);
      for (const auto& [w, s] : TopKDense(text_tree.node(node).phi[0], 30)) {
        top_word_w[w] = 1.0;
      }
      std::vector<std::vector<double>> score(2);
      score[0].assign(ds.entity_type_sizes[0], 0.0);
      score[1].assign(ds.entity_type_sizes[1], 0.0);
      for (int d = 0; d < ds.corpus.num_docs(); ++d) {
        double doc_w = 0.0;
        for (int w : ds.corpus.docs()[d].tokens) doc_w += top_word_w[w];
        if (doc_w <= 0.0) continue;
        for (size_t x = 0; x < 2; ++x) {
          for (int e : ds.entity_docs[d].entities[x]) {
            score[x][e] += doc_w;
          }
        }
      }
      std::vector<std::vector<int>> per_type(2);
      for (int x = 0; x < 2; ++x) {
        for (const auto& [e, s] : TopKDense(score[x], 8)) {
          per_type[x].push_back(e);
        }
      }
      out.push_back(std::move(per_type));
    }
    return out;
  };

  eval::IntrusionOptions iopt;
  iopt.num_questions = 200;
  iopt.annotator_noise = 0.08;
  iopt.seed = 7;

  auto phrase_score = [&](const core::TopicHierarchy& tree,
                          const phrase::KertScorer& kert, int max_len) {
    return eval::RunIntrusionTask(
        PhraseItems(judge,
                          HierarchyPhrases(tree, kert, dict, max_len, 8)),
        iopt);
  };
  auto entity_score = [&](const std::vector<std::vector<std::vector<int>>>& e,
                          int type) {
    return eval::RunIntrusionTask(EntityItems(judge, e, type), iopt);
  };
  auto topic_score = [&](const core::TopicHierarchy& tree,
                         const phrase::KertScorer& kert) {
    eval::IntrusionOptions t_opt = iopt;
    t_opt.options_per_question = 3;
    return eval::RunIntrusionTask(ChildGroups(tree, kert, dict, judge), t_opt);
  };

  bench::PrintHeader({"method", "Phrase", "Venue", "Author", "Topic"});
  auto hin_entities = entity_lists(hin_tree);
  bench::PrintRow("CATHYHIN",
                  {phrase_score(hin_tree, hin_kert, 6),
                   entity_score(hin_entities, 1),
                   entity_score(hin_entities, 0),
                   topic_score(hin_tree, hin_kert)});
  bench::PrintRow("CATHYHIN1",
                  {phrase_score(hin_tree, hin_kert, 1),
                   entity_score(hin_entities, 1),
                   entity_score(hin_entities, 0),
                   topic_score(hin_tree, hin_kert)});
  bench::PrintRow("CATHY",
                  {phrase_score(text_tree, text_kert, 6), 0.0, 0.0,
                   topic_score(text_tree, text_kert)});
  bench::PrintRow("CATHY1",
                  {phrase_score(text_tree, text_kert, 1), 0.0, 0.0,
                   topic_score(text_tree, text_kert)});
  auto heur = heuristic_entities();
  bench::PrintRow("CATHYheur HIN",
                  {0.0, entity_score(heur, 1), entity_score(heur, 0),
                   topic_score(text_tree, text_kert)});
  auto nc_entities = [&]() {
    std::vector<std::vector<std::vector<int>>> out;
    for (int z = 0; z < gopt.num_areas; ++z) {
      std::vector<std::vector<int>> per_type(2);
      for (int x = 1; x <= 2; ++x) {
        for (const auto& [e, s] : TopKDense(nc.phi[z][x], 8)) {
          if (s > 1e-4) per_type[x - 1].push_back(e);
        }
      }
      out.push_back(std::move(per_type));
    }
    return out;
  }();
  bench::PrintRow("NetClus-pattern",
                  {phrase_score(nc_tree, nc_kert, 6),
                   entity_score(nc_entities, 1), entity_score(nc_entities, 0),
                   0.0});
  bench::PrintRow("NetClus",
                  {phrase_score(nc_tree, nc_kert, 1),
                   entity_score(nc_entities, 1), entity_score(nc_entities, 0),
                   0.0});
  std::printf("(0.0000 = task not applicable to the method, as the dashes "
              "in the paper's table)\n");
}

}  // namespace
}  // namespace latent

int main() {
  std::printf("Table 3.5: intruder-detection tasks (%% correct), oracle "
              "annotators (see DESIGN.md Substitutions)\n");
  latent::RunBlock(/*news=*/false);
  latent::RunBlock(/*news=*/true);
  return 0;
}
