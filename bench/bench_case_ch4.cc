// Reproduces Tables 4.6-4.8: ToPMine topic visualizations (top unigrams +
// top phrases per topic) on three larger long-text corpora — the
// DBLP-abstracts, AP-news and Yelp-reviews analogues. The Yelp analogue is
// intentionally noisier (the paper reports "coherent, yet lower quality"
// phrases there).
#include <cstdio>

#include "bench_util.h"
#include "eval/oracle_judge.h"
#include "phrase/topmine.h"

namespace latent {
namespace {

void RunCorpus(const char* title, const data::HinDataset& ds, int k,
               uint64_t seed) {
  std::printf("\n== %s (%d docs) ==\n", title, ds.corpus.num_docs());
  phrase::TopMineOptions opt;
  opt.miner.min_support = 8;
  opt.lda.num_topics = k;
  opt.lda.iterations = 150;
  opt.lda.seed = seed;
  phrase::TopMineResult r = phrase::RunTopMine(ds.corpus, opt, 6);
  for (int z = 0; z < k; ++z) {
    std::printf("Topic %d\n  unigrams:", z);
    for (const auto& [w, p] : r.topics[z].unigrams) {
      std::printf(" %s", ds.corpus.vocab().Token(w).c_str());
    }
    std::printf("\n  phrases :");
    for (const auto& [p, s] : r.topics[z].phrases) {
      std::printf(" [%s]", r.dict.ToString(p, ds.corpus.vocab()).c_str());
    }
    std::printf("\n");
  }
  // Quantitative companion: oracle quality of the phrase lists.
  eval::OracleJudge judge(ds, 171);
  double quality = 0.0;
  int n = 0;
  for (int z = 0; z < k; ++z) {
    for (const auto& [p, s] : r.topics[z].phrases) {
      quality += judge.ScorePhrase(r.dict.Words(p), -1, 0);
      ++n;
    }
  }
  std::printf("mean oracle phrase quality: %.3f (1..5)\n",
              n > 0 ? quality / n : 0.0);
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Tables 4.6-4.8: ToPMine topic visualizations on long-text "
              "corpora (synthetic analogues)\n");

  data::HinDatasetOptions abstracts = data::DblpLikeOptions(4000, 201);
  abstracts.with_entities = false;
  abstracts.num_areas = 5;
  abstracts.subareas_per_area = 1;
  abstracts.min_phrases_per_doc = 8;
  abstracts.max_phrases_per_doc = 14;
  RunCorpus("DBLP abstracts analogue (Table 4.6)",
            data::GenerateHinDataset(abstracts), 5, 301);

  data::HinDatasetOptions news = data::NewsLikeOptions(4000, 202);
  news.with_entities = false;
  news.num_areas = 5;
  news.subareas_per_area = 1;
  news.min_phrases_per_doc = 10;
  news.max_phrases_per_doc = 16;
  RunCorpus("AP news analogue (Table 4.7)", data::GenerateHinDataset(news), 5,
            302);

  data::HinDatasetOptions yelp = data::DblpLikeOptions(4000, 203);
  yelp.with_entities = false;
  yelp.num_areas = 5;
  yelp.subareas_per_area = 1;
  yelp.min_phrases_per_doc = 8;
  yelp.max_phrases_per_doc = 16;
  yelp.word_noise = 0.35;  // noisy reviews
  RunCorpus("Yelp reviews analogue (Table 4.8, noisier)",
            data::GenerateHinDataset(yelp), 5, 303);

  std::printf("\nPaper shape: clean corpora give high-quality topical "
              "phrases; the noisy Yelp-style corpus gives coherent but "
              "lower-quality ones.\n");
  return 0;
}
