// Reproduces Figures 4.3-4.5: phrase-intrusion accuracy, topical-coherence
// z-scores, and phrase-quality z-scores for ToPMine, KERT, TNG, and
// Turbo-Topics(lite) on short-title ("20Conf") and abstract-like ("ACL")
// corpora. PD-LDA is represented by the substitution documented in
// DESIGN.md (its role as slow/low-quality comparator is occupied by TNG).
//
// Paper shape to reproduce: ToPMine ~ KERT on intrusion with ToPMine best
// on coherence/quality; TNG weakest; Turbo above average.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/tng.h"
#include "baselines/turbo_lite.h"
#include "bench_util.h"
#include "common/math_util.h"
#include "core/builder.h"
#include "eval/intrusion.h"
#include "eval/oracle_judge.h"
#include "phrase/kert.h"
#include "phrase/topmine.h"
#include "text/tokenizer.h"

namespace latent {
namespace {

struct MethodTopics {
  std::string name;
  // Per topic: phrase items as word-id sequences.
  std::vector<std::vector<std::vector<int>>> topics;
};

// Parses rendered "w1 w2" phrase strings back into ids.
std::vector<std::vector<int>> ParsePhrases(
    const std::vector<std::pair<std::string, double>>& phrases,
    const text::Corpus& corpus, size_t limit) {
  std::vector<std::vector<int>> out;
  for (const auto& [s, c] : phrases) {
    std::vector<int> ids;
    for (const std::string& tok : text::Tokenize(s)) {
      int id = corpus.vocab().Lookup(tok);
      if (id >= 0) ids.push_back(id);
    }
    if (!ids.empty()) out.push_back(std::move(ids));
    if (out.size() >= limit) break;
  }
  return out;
}

double MeanCoherence(const eval::OracleJudge& judge,
                     const std::vector<std::vector<std::vector<int>>>& topics) {
  double total = 0.0;
  int n = 0;
  for (const auto& items : topics) {
    std::vector<std::vector<double>> aff;
    for (const auto& p : items) aff.push_back(judge.PhraseAreaAffinity(p));
    double sim = 0.0;
    int pairs = 0;
    for (size_t i = 0; i < aff.size(); ++i) {
      for (size_t j = i + 1; j < aff.size(); ++j) {
        sim += CosineSimilarity(aff[i], aff[j]);
        ++pairs;
      }
    }
    if (pairs > 0) {
      total += sim / pairs;
      ++n;
    }
  }
  return n > 0 ? total / n : 0.0;
}

double MeanQuality(const eval::OracleJudge& judge,
                   const std::vector<std::vector<std::vector<int>>>& topics) {
  double total = 0.0;
  int n = 0;
  for (const auto& items : topics) {
    for (const auto& p : items) {
      total += judge.ScorePhrase(p, /*area=*/-1, /*judge_id=*/0);
      ++n;
    }
  }
  return n > 0 ? total / n : 0.0;
}

void RunCorpus(const char* title, const data::HinDataset& ds, int k) {
  eval::OracleJudge judge(ds, 151);
  std::vector<MethodTopics> methods;

  // ToPMine.
  {
    phrase::TopMineOptions opt;
    opt.miner.min_support = 5;
    opt.lda.num_topics = k;
    opt.lda.alpha = 2.0;
    opt.lda.iterations = 250;
    opt.lda.seed = 61;
    phrase::TopMineResult r = phrase::RunTopMine(ds.corpus, opt, 12);
    MethodTopics m;
    m.name = "ToPMine";
    for (const auto& t : r.topics) {
      std::vector<std::vector<int>> items;
      for (const auto& [p, s] : t.phrases) items.push_back(r.dict.Words(p));
      m.topics.push_back(std::move(items));
    }
    methods.push_back(std::move(m));
  }

  // KERT over a CATHY tree.
  {
    hin::HeteroNetwork net = hin::BuildTermCooccurrenceNetwork(ds.corpus);
    core::BuildOptions bopt;
    bopt.levels_k = {k};
    bopt.max_depth = 1;
    bopt.cluster.background = false;
    bopt.cluster.restarts = 2;
    bopt.cluster.max_iters = 60;
    bopt.cluster.seed = 63;
    core::TopicHierarchy tree = core::BuildHierarchy(net, bopt);
    phrase::MinerOptions mopt;
    mopt.min_support = 5;
    phrase::PhraseDict dict = phrase::MineFrequentPhrases(ds.corpus, mopt);
    phrase::KertScorer kert(ds.corpus, dict, tree);
    phrase::KertOptions kopt;
    MethodTopics m;
    m.name = "KERT";
    for (int node : tree.NodesAtLevel(1)) {
      std::vector<std::vector<int>> items;
      for (const auto& [p, s] : kert.RankTopic(node, kopt, 12)) {
        items.push_back(dict.Words(p));
      }
      m.topics.push_back(std::move(items));
    }
    methods.push_back(std::move(m));
  }

  // TNG (the complex-integrated-model comparator; also stands in for
  // PD-LDA, see DESIGN.md).
  {
    baselines::TngOptions opt;
    opt.num_topics = k;
    opt.iterations = 120;
    opt.seed = 65;
    baselines::TngResult r = baselines::FitTng(ds.corpus, opt, 12);
    MethodTopics m;
    m.name = "TNG";
    for (const auto& t : r.topics) {
      m.topics.push_back(ParsePhrases(t.phrases, ds.corpus, 12));
    }
    methods.push_back(std::move(m));
  }

  // Turbo Topics (lite).
  {
    baselines::TurboLiteOptions opt;
    opt.lda.num_topics = k;
    opt.lda.iterations = 120;
    opt.lda.seed = 67;
    opt.min_support = 5;
    baselines::TurboLiteResult r = baselines::FitTurboLite(ds.corpus, opt, 12);
    MethodTopics m;
    m.name = "Turbo(lite)";
    for (const auto& t : r.topics) {
      m.topics.push_back(ParsePhrases(t.phrases, ds.corpus, 12));
    }
    methods.push_back(std::move(m));
  }

  // Metrics: intrusion accuracy, then z-scored coherence and quality.
  std::vector<double> intrusion, coherence, quality;
  for (const MethodTopics& m : methods) {
    std::vector<eval::IntrusionTopic> items(m.topics.size());
    for (size_t t = 0; t < m.topics.size(); ++t) {
      for (const auto& p : m.topics[t]) {
        items[t].item_affinities.push_back(judge.PhraseAreaAffinity(p));
      }
    }
    eval::IntrusionOptions iopt;
    iopt.num_questions = 150;
    iopt.annotator_noise = 0.08;
    iopt.seed = 69;
    intrusion.push_back(eval::RunIntrusionTask(items, iopt));
    coherence.push_back(MeanCoherence(judge, m.topics));
    quality.push_back(MeanQuality(judge, m.topics));
  }
  auto zscore = [](std::vector<double> v) {
    double mean = 0, var = 0;
    for (double x : v) mean += x;
    mean /= v.size();
    for (double x : v) var += (x - mean) * (x - mean);
    double sd = std::sqrt(var / v.size());
    for (double& x : v) x = sd > 0 ? (x - mean) / sd : 0.0;
    return v;
  };
  std::vector<double> coh_z = zscore(coherence);
  std::vector<double> qual_z = zscore(quality);

  std::printf("\n== %s ==\n", title);
  bench::PrintHeader(
      {"method", "intrusion", "coherence-z", "quality-z"}, 14);
  for (size_t i = 0; i < methods.size(); ++i) {
    bench::PrintRow(methods[i].name, {intrusion[i], coh_z[i], qual_z[i]}, 14);
  }
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Figures 4.3-4.5: phrase intrusion / coherence z / quality z "
              "(oracle experts; see DESIGN.md)\n");
  // Short titles ("20Conf" analogue).
  data::HinDatasetOptions conf = data::DblpLikeOptions(4000, 71);
  conf.num_areas = 5;
  conf.subareas_per_area = 1;
  conf.with_entities = false;
  RunCorpus("20Conf analogue (titles)", data::GenerateHinDataset(conf), 5);

  // Longer abstract-like documents ("ACL" analogue).
  data::HinDatasetOptions acl = data::DblpLikeOptions(1500, 73);
  acl.num_areas = 4;
  acl.subareas_per_area = 1;
  acl.with_entities = false;
  acl.min_phrases_per_doc = 8;
  acl.max_phrases_per_doc = 14;
  RunCorpus("ACL analogue (abstracts)", data::GenerateHinDataset(acl), 4);
  return 0;
}
