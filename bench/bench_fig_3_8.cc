// Reproduces Figure 3.8: learned link-type weights alpha on the DBLP-like
// network, at the first level (splitting the whole collection into areas)
// versus the second level (splitting one area into subareas).
//
// Paper shape to reproduce: venue-related link types (term-venue,
// author-venue) carry high weight at level 1 — venues discriminate broad
// areas — and much lower weight at level 2, where venues are shared across
// subareas.
#include <cstdio>

#include "bench_util.h"
#include "core/clusterer.h"

int main() {
  using namespace latent;
  std::printf("Figure 3.8: learned link-type weights by level (DBLP-like)\n\n");

  // Level-2 discrimination requires venues to be genuinely shared among the
  // subareas of an area, which the generator plants (venues are per-area).
  data::HinDatasetOptions gopt = data::DblpLikeOptions(6000, 46);
  data::HinDataset ds = data::GenerateHinDataset(gopt);
  hin::HeteroNetwork net = hin::BuildCollapsedNetwork(
      ds.corpus, ds.entity_type_names, ds.entity_type_sizes, ds.entity_docs);

  core::ClusterOptions copt;
  copt.num_topics = 6;
  copt.background = true;
  copt.weight_mode = core::LinkWeightMode::kLearned;
  copt.restarts = 2;
  copt.max_iters = 80;
  copt.seed = 21;
  auto parent = core::DegreeDistributions(net);
  core::ClusterResult level1 = core::FitCluster(net, parent, copt);

  // Level 2: recurse into the subnetwork of the first subtopic.
  hin::HeteroNetwork sub = core::ExtractSubnetwork(net, level1, 0);
  core::ClusterOptions copt2 = copt;
  copt2.num_topics = 4;
  copt2.seed = 22;
  core::ClusterResult level2 =
      core::FitCluster(sub, level1.phi[0], copt2);

  auto type_label = [&](int lt) {
    const hin::LinkType& t = net.link_type(lt);
    return net.type_name(t.type_x) + "-" + net.type_name(t.type_y);
  };
  bench::PrintHeader({"link type", "alpha level 1", "alpha level 2"}, 16);
  for (int lt = 0; lt < net.num_link_types(); ++lt) {
    // Skip types that vanished from the subnetwork.
    double a2 = lt < static_cast<int>(level2.alpha.size())
                    ? level2.alpha[lt]
                    : 0.0;
    bench::PrintRow(type_label(lt), {level1.alpha[lt], a2}, 16);
  }
  std::printf(
      "\nExpected shape (paper): venue link types weigh most at level 1\n"
      "and fall at level 2 where venues no longer separate subareas.\n");
  return 0;
}
