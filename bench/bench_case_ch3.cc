// Reproduces the Chapter 3 case studies (Tables 3.6/3.7, Figures 3.3/3.4):
// qualitative topic representations by CATHYHIN, CATHY + heuristic entity
// ranking, and NetClus-with-phrases, plus the full rendered hierarchy.
//
// Paper shape to reproduce: CATHYHIN's topics are "pure" (entities and
// phrases from one planted area), the heuristic ranking drifts for
// entities, and NetClus mixes areas.
#include <cstdio>
#include <string>

#include "api/latent.h"
#include "baselines/netclus.h"
#include "bench_util.h"
#include "eval/oracle_judge.h"
#include "phrase/kert.h"

namespace latent {
namespace {

// Majority planted area among a topic's top-10 type-0 entities.
int DominantArea(const data::HinDataset& ds,
                 const std::vector<Scored<int>>& entities) {
  std::vector<int> votes(ds.num_areas, 0);
  for (const auto& [e, s] : entities) ++votes[ds.entity0_area(e)];
  int best = 0;
  for (int a = 1; a < ds.num_areas; ++a) {
    if (votes[a] > votes[best]) best = a;
  }
  return best;
}

// Purity of a topic's entity list against one planted area.
double EntityPurity(const data::HinDataset& ds,
                    const std::vector<Scored<int>>& entities, int area) {
  if (entities.empty()) return 0.0;
  int hit = 0;
  for (const auto& [e, s] : entities) {
    if (ds.entity0_area(e) == area) ++hit;
  }
  return static_cast<double>(hit) / entities.size();
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Chapter 3 case study (Tables 3.6/3.7 analogue)\n\n");

  data::HinDatasetOptions gopt = data::DblpLikeOptions(4000, 48);
  gopt.num_areas = 4;
  gopt.subareas_per_area = 3;
  data::HinDataset ds = data::GenerateHinDataset(gopt);

  api::PipelineOptions popt;
  popt.build.levels_k = {4, 3};
  popt.build.max_depth = 2;
  popt.build.cluster.weight_mode = core::LinkWeightMode::kLearned;
  popt.build.cluster.restarts = 2;
  popt.build.cluster.max_iters = 60;
  popt.build.cluster.seed = 5;
  popt.miner.min_support = 5;
  popt.exec.num_threads = 0;
  latent::StatusOr<api::MinedHierarchy> mined_or =
      api::Mine(api::PipelineInput(
                    ds.corpus,
                    api::EntitySchema(ds.entity_type_names,
                                      ds.entity_type_sizes),
                    ds.entity_docs),
                popt);
  const api::MinedHierarchy& mined = mined_or.value();

  phrase::KertOptions kopt;
  std::printf("=== CATHYHIN hierarchy (Figure 3.4 analogue) ===\n%s\n",
              mined.RenderTree(kopt, 4).c_str());

  // Per level-1 topic: phrases, authors, venues + purity of the authors.
  std::printf("=== Topic representations & entity purity ===\n");
  double cathyhin_purity = 0.0;
  int topics = 0;
  for (int node : mined.tree().NodesAtLevel(1)) {
    auto authors = mined.TopEntities(node, 1, 10);
    int area = DominantArea(ds, authors);
    double purity = EntityPurity(ds, authors, area);
    cathyhin_purity += purity;
    ++topics;
    std::printf("%s (planted area %d, author purity %.2f)\n",
                mined.tree().node(node).path.c_str(), area, purity);
    std::printf("  phrases: %s\n", mined.RenderNode(node, kopt, 4).c_str());
  }
  std::printf("CATHYHIN mean author purity: %.3f\n\n",
              cathyhin_purity / topics);

  // NetClus comparison: same corpus, flat clusters.
  baselines::NetClusOptions nopt;
  nopt.num_clusters = 4;
  nopt.max_iters = 30;
  nopt.seed = 5;
  baselines::NetClusResult nc = baselines::RunNetClus(
      ds.corpus, ds.entity_type_sizes, ds.entity_docs, nopt);
  double nc_purity = 0.0;
  for (int z = 0; z < 4; ++z) {
    std::vector<Scored<int>> authors = TopKDense(nc.phi[z][1], 10);
    nc_purity += EntityPurity(ds, authors, DominantArea(ds, authors));
  }
  std::printf("NetClus mean author purity:  %.3f\n", nc_purity / 4);
  std::printf("(paper shape: CATHYHIN purer than NetClus)\n");
  return 0;
}
