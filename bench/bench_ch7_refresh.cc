// Incremental re-mining benchmark (ROADMAP ch7 serving story): wall-clock
// of api::Refresh folding a ~5% document delta into a checkpointed base
// mine, versus re-mining the merged corpus from scratch. The headline
// metric is the dimensionless speedup ratio (stable across machines);
// run_bench.sh commits it to BENCH_<n>.json, and the acceptance floor for
// this PR is >= 5x at a <= 5% delta.
//
// Also prints the refresh.* accounting counters (dirty/clean subtree split
// and warm-started fits) so the ratio can be read against how much work the
// refresh actually skipped.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/latent.h"
#include "api/refresh.h"
#include "data/synthetic_hin.h"
#include "obs/metrics.h"
#include "text/corpus.h"

namespace latent {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Re-interns the listed docs into a fresh corpus, preserving segment
// boundaries — the same document-order interning Refresh uses internally,
// so the scratch re-mine sees a bitwise-equal merged corpus.
text::Corpus SliceCorpus(const text::Corpus& src, const std::vector<int>& ids_in) {
  text::Corpus out;
  for (int d : ids_in) {
    const text::Document& doc = src.docs()[d];
    std::vector<int> ids;
    ids.reserve(doc.tokens.size());
    for (int t : doc.tokens) {
      ids.push_back(out.mutable_vocab().Intern(src.vocab().Token(t)));
    }
    out.AddDocumentIds(std::move(ids));
    out.mutable_doc(out.num_docs() - 1).segment_starts = doc.segment_starts;
  }
  return out;
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;

  std::printf("== Incremental refresh vs full re-mine (api::Refresh) ==\n");

  data::HinDatasetOptions dopt = data::DblpLikeOptions(6000, 55);
  dopt.num_areas = 4;
  dopt.subareas_per_area = 3;
  data::HinDataset ds = data::GenerateHinDataset(dopt);
  const int n = ds.corpus.num_docs();
  const int delta_n = n / 20;  // 5% delta

  // The delta is topically concentrated — all its documents come from one
  // planted area — so the routing step can prove that untouched sibling
  // subtrees stay clean (the realistic arrival pattern: a burst of new
  // papers in one subfield, not a uniform sprinkle over every field).
  std::vector<int> base_ids, area0_ids;
  for (int d = 0; d < n; ++d) {
    (ds.doc_area[d] == 0 ? area0_ids : base_ids).push_back(d);
  }
  base_ids.insert(base_ids.end(), area0_ids.begin(),
                  area0_ids.end() - delta_n);
  std::vector<int> delta_ids(area0_ids.end() - delta_n, area0_ids.end());
  std::vector<int> merged_ids = base_ids;
  merged_ids.insert(merged_ids.end(), delta_ids.begin(), delta_ids.end());

  text::Corpus base_corpus = SliceCorpus(ds.corpus, base_ids);
  text::Corpus delta_corpus = SliceCorpus(ds.corpus, delta_ids);
  text::Corpus merged_corpus = SliceCorpus(ds.corpus, merged_ids);
  std::vector<hin::EntityDoc> base_ents, delta_ents, merged_ents;
  for (int d : base_ids) base_ents.push_back(ds.entity_docs[d]);
  for (int d : delta_ids) delta_ents.push_back(ds.entity_docs[d]);
  merged_ents = base_ents;
  merged_ents.insert(merged_ents.end(), delta_ents.begin(), delta_ents.end());
  api::EntitySchema schema(ds.entity_type_names, ds.entity_type_sizes);
  std::printf("docs base=%d delta=%d (%.1f%% delta, one planted area)\n",
              (int)base_ids.size(), delta_n, 100.0 * delta_n / n);

  api::PipelineOptions opt;
  opt.build.levels_k = {4, 3};
  opt.build.max_depth = 2;
  opt.build.cluster.restarts = 3;
  opt.build.cluster.seed = 7;
  opt.miner.min_support = 4;
  opt.exec.num_threads = 1;  // serial: the ratio is not hidden by idle cores

  // Base mine (setup, untimed): the checkpoint the refresh re-opens.
  const std::string base_dir = "/tmp/latent_bench_refresh_base";
  ::system(("rm -rf " + base_dir).c_str());
  api::PipelineOptions base_opt = opt;
  base_opt.checkpoint_dir = base_dir;
  api::PipelineInput base_input(base_corpus, schema, base_ents);
  StatusOr<api::MinedHierarchy> base = api::Mine(base_input, base_opt);
  if (!base.ok()) {
    std::fprintf(stderr, "base mine failed: %s\n",
                 base.status().message().c_str());
    return 1;
  }

  const int kReps = 3;  // best-of to damp scheduler noise

  // Full re-mine of the merged corpus from scratch.
  api::PipelineInput merged_input(merged_corpus, schema, merged_ents);
  double full_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    StatusOr<api::MinedHierarchy> r = api::Mine(merged_input, opt);
    const double s = SecondsSince(t0);
    if (!r.ok()) {
      std::fprintf(stderr, "full re-mine failed: %s\n",
                   r.status().message().c_str());
      return 1;
    }
    if (rep == 0 || s < full_s) full_s = s;
  }
  std::printf("full re-mine        %8.3f s\n", full_s);

  // Incremental refresh of the same delta.
  obs::Registry metrics;
  api::RefreshOptions ropt;
  ropt.pipeline = opt;
  ropt.pipeline.metrics = &metrics;
  ropt.base_checkpoint_dir = base_dir;
  ropt.base_entity_docs = &base_ents;
  api::PipelineInput delta_input(delta_corpus, schema, delta_ents);
  double refresh_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    StatusOr<api::MinedHierarchy> r =
        api::Refresh(base.value(), delta_input, ropt);
    const double s = SecondsSince(t0);
    if (!r.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n",
                   r.status().message().c_str());
      return 1;
    }
    if (rep == 0 || s < refresh_s) refresh_s = s;
  }
  std::printf("incremental refresh %8.3f s\n", refresh_s);

  const double speedup = refresh_s > 0 ? full_s / refresh_s : 0.0;
  std::printf("refresh vs full: full %.3fs, refresh %.3fs  (%.1fx speedup)\n",
              full_s, refresh_s, speedup);
  // Counters accumulate across the kReps refreshes; report per-run values.
  std::printf("refresh nodes: dirty %llu clean %llu warm_fits %llu\n",
              (unsigned long long)(metrics.CounterValue("refresh.nodes.dirty") /
                                   kReps),
              (unsigned long long)(metrics.CounterValue("refresh.nodes.clean") /
                                   kReps),
              (unsigned long long)(metrics.CounterValue("refresh.warm.fits") /
                                   kReps));
  ::system(("rm -rf " + base_dir).c_str());
  return 0;
}
