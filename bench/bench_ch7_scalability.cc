// Reproduces the Section 7.4.1 scalability experiment: STROD (moment-based
// spectral inference) versus collapsed Gibbs LDA as the corpus grows and as
// k grows.
//
// Paper shape to reproduce: STROD runs orders of magnitude faster than
// Gibbs sampling (the paper reports up to ~100x+ against optimized
// samplers) and scales linearly in corpus size; Gibbs cost scales with
// tokens x iterations x k. We run Gibbs at only 100 iterations (real
// convergence needs ~1000+), so the reported ratio UNDERSTATES the gap.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/lda_gibbs.h"
#include "bench_util.h"
#include "common/timer.h"
#include "data/lda_gen.h"
#include "strod/strod.h"

int main() {
  using namespace latent;
  std::printf("Section 7.4.1: STROD vs Gibbs LDA runtime (Gibbs at only "
              "100 iterations -> ratios understate the paper's gap)\n\n");

  bench::PrintHeader({"corpus", "STROD (s)", "Gibbs100 (s)", "speedup"}, 14);
  for (auto [docs, k] : std::vector<std::pair<int, int>>{
           {1000, 5}, {3000, 5}, {10000, 5}, {3000, 10}}) {
    data::LdaGenOptions gopt;
    gopt.num_topics = k;
    gopt.vocab_size = 800;
    gopt.num_docs = docs;
    gopt.doc_length = 50;
    gopt.alpha0 = 1.0;
    gopt.seed = 700 + docs + k;
    data::LdaDataset ds = data::GenerateLdaDataset(gopt);

    WallTimer t1;
    strod::StrodOptions sopt;
    sopt.num_topics = k;
    sopt.alpha0 = 1.0;
    sopt.seed = 11;
    strod::FitStrod(ds.docs, ds.vocab_size, sopt);
    double strod_s = t1.Seconds();

    text::Corpus corpus = ds.ToCorpus();
    WallTimer t2;
    baselines::LdaOptions lopt;
    lopt.num_topics = k;
    lopt.iterations = 100;
    lopt.seed = 13;
    baselines::FitLda(corpus, lopt);
    double gibbs_s = t2.Seconds();

    bench::PrintRow(
        "D=" + std::to_string(docs) + " k=" + std::to_string(k),
        {strod_s, gibbs_s, gibbs_s / std::max(strod_s, 1e-9)}, 14);
  }
  std::printf("\nPaper shape: STROD faster by a large factor, growing with "
              "corpus size and Gibbs iteration count.\n");
  return 0;
}
