// Reproduces the Section 7.4.1 scalability experiment: STROD (moment-based
// spectral inference) versus collapsed Gibbs LDA as the corpus grows and as
// k grows — plus the thread-scaling of the latent::exec parallel pipeline.
//
// Paper shape to reproduce: STROD runs orders of magnitude faster than
// Gibbs sampling (the paper reports up to ~100x+ against optimized
// samplers) and scales linearly in corpus size; Gibbs cost scales with
// tokens x iterations x k. We run Gibbs at only 100 iterations (real
// convergence needs ~1000+), so the reported ratio UNDERSTATES the gap.
//
// The thread-scaling section mines the full CATHYHIN + KERT pipeline
// (api::Mine, deterministic mode) at 1/2/4/8 threads on one synthetic HIN
// and reports wall time and speedup vs the serial run. Speedups are
// hardware-dependent: on a single-core container every row measures the
// same serial work plus pool overhead (expect ~1.0x); on an 8-core machine
// the restart/sibling/E-step parallelism is what scales.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/latent.h"
#include "baselines/lda_gibbs.h"
#include "bench_util.h"
#include "common/timer.h"
#include "data/lda_gen.h"
#include "data/synthetic_hin.h"
#include "strod/strod.h"

int main() {
  using namespace latent;
  std::printf("Section 7.4.1: STROD vs Gibbs LDA runtime (Gibbs at only "
              "100 iterations -> ratios understate the paper's gap)\n\n");

  bench::PrintHeader({"corpus", "STROD (s)", "Gibbs100 (s)", "speedup"}, 14);
  for (auto [docs, k] : std::vector<std::pair<int, int>>{
           {1000, 5}, {3000, 5}, {10000, 5}, {3000, 10}}) {
    data::LdaGenOptions gopt;
    gopt.num_topics = k;
    gopt.vocab_size = 800;
    gopt.num_docs = docs;
    gopt.doc_length = 50;
    gopt.alpha0 = 1.0;
    gopt.seed = 700 + docs + k;
    data::LdaDataset ds = data::GenerateLdaDataset(gopt);

    WallTimer t1;
    core::SpectralOptions sopt;
    sopt.num_topics = k;
    sopt.alpha0 = 1.0;
    sopt.seed = 11;
    strod::FitStrod(ds.docs, ds.vocab_size, sopt);
    double strod_s = t1.Seconds();

    text::Corpus corpus = ds.ToCorpus();
    WallTimer t2;
    baselines::LdaOptions lopt;
    lopt.num_topics = k;
    lopt.iterations = 100;
    lopt.seed = 13;
    baselines::FitLda(corpus, lopt);
    double gibbs_s = t2.Seconds();

    bench::PrintRow(
        "D=" + std::to_string(docs) + " k=" + std::to_string(k),
        {strod_s, gibbs_s, gibbs_s / std::max(strod_s, 1e-9)}, 14);
  }
  std::printf("\nPaper shape: STROD faster by a large factor, growing with "
              "corpus size and Gibbs iteration count.\n");

  std::printf("\nThread-scaling of the full pipeline (api::Mine, "
              "deterministic mode; %u hardware threads)\n\n",
              std::thread::hardware_concurrency());
  data::HinDatasetOptions hopt = data::DblpLikeOptions(4000, /*seed=*/77);
  hopt.num_areas = 4;
  hopt.subareas_per_area = 3;
  data::HinDataset hin = data::GenerateHinDataset(hopt);
  api::PipelineInput input(
      hin.corpus,
      api::EntitySchema(hin.entity_type_names, hin.entity_type_sizes),
      hin.entity_docs);
  api::PipelineOptions popt;
  popt.build.levels_k = {4, 3};
  popt.build.max_depth = 2;
  popt.build.cluster.restarts = 4;
  popt.build.cluster.max_iters = 60;
  popt.build.cluster.seed = 3;
  popt.miner.min_support = 5;

  bench::PrintHeader({"threads", "Mine (s)", "speedup"}, 14);
  double serial_s = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    popt.exec.num_threads = threads;
    WallTimer t;
    StatusOr<api::MinedHierarchy> mined = api::Mine(input, popt);
    double secs = t.Seconds();
    if (!mined.ok()) {
      std::printf("pipeline rejected: %s\n", mined.status().message().c_str());
      return 1;
    }
    if (threads == 1) serial_s = secs;
    bench::PrintRow("T=" + std::to_string(threads),
                    {secs, serial_s / std::max(secs, 1e-9)}, 14);
  }
  std::printf("\nResults are bit-identical across the rows (deterministic "
              "mode); see tests/determinism_test.cc.\n");

  // EM vs spectral head-to-head through the full pipeline seam
  // (PipelineOptions::inference) at growing corpus sizes: the same
  // api::Mine call, only the per-node inference backend differs. The
  // spectral advantage grows with corpus size — EM cost scales with
  // tokens x iterations x restarts while the moment construction is one
  // pass over the tokens plus size-independent tensor algebra.
  std::printf("\nInference backends head-to-head (api::Mine, "
              "--inference em vs spectral)\n\n");
  bench::PrintHeader({"corpus", "EM (s)", "spectral (s)", "EM/spectral"}, 14);
  for (int docs : {1000, 4000, 16000}) {
    data::HinDatasetOptions sopt = data::DblpLikeOptions(docs, /*seed=*/177);
    sopt.num_areas = 4;
    sopt.subareas_per_area = 3;
    data::HinDataset hds = data::GenerateHinDataset(sopt);
    api::PipelineInput sinput(
        hds.corpus,
        api::EntitySchema(hds.entity_type_names, hds.entity_type_sizes),
        hds.entity_docs);
    api::PipelineOptions base;
    base.build.levels_k = {4, 3};
    base.build.max_depth = 2;
    base.build.cluster.restarts = 4;
    base.build.cluster.max_iters = 60;
    base.build.cluster.seed = 3;
    base.miner.min_support = 5;
    base.exec.num_threads = 1;  // serial: isolate the backend cost

    double secs[2] = {0.0, 0.0};
    const core::InferenceBackendKind kinds[2] = {
        core::InferenceBackendKind::kEm,
        core::InferenceBackendKind::kSpectral};
    for (int b = 0; b < 2; ++b) {
      api::PipelineOptions opt = base;
      opt.inference.backend = kinds[b];
      WallTimer t;
      StatusOr<api::MinedHierarchy> mined = api::Mine(sinput, opt);
      secs[b] = t.Seconds();
      if (!mined.ok()) {
        std::printf("pipeline rejected: %s\n",
                    mined.status().message().c_str());
        return 1;
      }
    }
    bench::PrintRow("D=" + std::to_string(docs),
                    {secs[0], secs[1], secs[0] / std::max(secs[1], 1e-9)},
                    14);
  }
  std::printf("\nPaper shape: the spectral backend stays several times "
              "faster than EM at every size (Section 7.4.1, through the "
              "Ch. 2-4 pipeline; the ratio here includes the shared "
              "collapse/phrase stages, so it understates the per-fit "
              "gap).\n");

  // Per-EM-iteration cost of the hot kernel path (ROADMAP item 4 / PR 9):
  // one FitCluster restart on a fixed collapsed network, wall ms divided by
  // the iteration count. bench/run_bench.sh parses the em_iter rows into
  // BENCH_*.json (em_iteration_ms_*), so this is the tracked trajectory
  // metric for the SoA/blocked E-step. steady_clock, mean + p50 per
  // docs/PERFORMANCE.md.
  std::printf("\nEM iteration cost (FitCluster, restarts=1, single "
              "thread; wall ms per iteration)\n\n");
  bench::PrintHeader({"config", "mean_ms", "p50_ms"}, 14);
  {
    data::HinDatasetOptions eopt = data::DblpLikeOptions(2000, /*seed=*/1001);
    data::HinDataset eds = data::GenerateHinDataset(eopt);
    hin::HeteroNetwork enet = hin::BuildCollapsedNetwork(
        eds.corpus, eds.entity_type_names, eds.entity_type_sizes,
        eds.entity_docs);
    auto parent = core::DegreeDistributions(enet);
    for (int k : {6, 12}) {
      core::ClusterOptions copt;
      copt.num_topics = k;
      copt.restarts = 1;
      copt.max_iters = 10;
      copt.tol = 0.0;  // run all iterations; no early convergence exit
      copt.seed = 3;
      bench::TimingStats stats = bench::TimeKernel(5, [&] {
        core::FitCluster(enet, parent, copt);
      });
      bench::PrintRow("em_iter k=" + std::to_string(k),
                      {stats.mean_ms / copt.max_iters,
                       stats.p50_ms / copt.max_iters},
                      14);
    }
  }
  return 0;
}
