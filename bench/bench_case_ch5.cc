// Reproduces the Chapter 5 case studies: Table 5.1 (quality-only vs
// entity-specific vs combined phrase ranking for two authors sharing a
// topic) and Figures 5.2/5.3 (an entity's topical frequency distribution
// down the hierarchy).
//
// Paper shape to reproduce: entity-specific-only ranking surfaces odd
// phrases; quality-only ignores the entity; the combination is both topical
// and entity-faithful. The role trees separate two same-area authors at the
// subarea level.
#include <cstdio>
#include <vector>

#include "api/latent.h"
#include "bench_util.h"
#include "role/role_analysis.h"

int main() {
  using namespace latent;
  std::printf("Chapter 5 case study: entity-specific phrase ranking and "
              "role trees\n\n");

  data::HinDatasetOptions gopt = data::DblpLikeOptions(4000, 401);
  gopt.num_areas = 4;
  gopt.subareas_per_area = 3;
  data::HinDataset ds = data::GenerateHinDataset(gopt);

  api::PipelineOptions popt;
  popt.build.levels_k = {4, 3};
  popt.build.max_depth = 2;
  popt.build.cluster.weight_mode = core::LinkWeightMode::kLearned;
  popt.build.cluster.restarts = 2;
  popt.build.cluster.max_iters = 60;
  popt.build.cluster.seed = 17;
  popt.miner.min_support = 5;
  popt.exec.num_threads = 0;
  latent::StatusOr<api::MinedHierarchy> mined_or =
      api::Mine(api::PipelineInput(
                    ds.corpus,
                    api::EntitySchema(ds.entity_type_names,
                                      ds.entity_type_sizes),
                    ds.entity_docs),
                popt);
  const api::MinedHierarchy& mined = mined_or.value();

  // Two authors of the SAME area but different subareas (like Yu vs
  // Faloutsos within Data Mining).
  const int author_a = 0;                              // subarea 0
  const int author_b = gopt.entities0_per_subarea;     // subarea 1
  auto docs_of = [&](int author) {
    std::vector<int> docs;
    for (int d = 0; d < ds.corpus.num_docs(); ++d) {
      for (int e : ds.entity_docs[d].entities[0]) {
        if (e == author) docs.push_back(d);
      }
    }
    return docs;
  };
  std::vector<int> docs_a = docs_of(author_a), docs_b = docs_of(author_b);

  // Their shared area topic: the level-1 node dominated by area 0.
  role::EntityTopicProfile profile(mined.kert(), mined.tree());
  std::vector<double> fa = profile.EntityTopicFrequencies(docs_a);
  std::vector<double> fb = profile.EntityTopicFrequencies(docs_b);
  int topic = mined.tree().NodesAtLevel(1)[0];
  for (int node : mined.tree().NodesAtLevel(1)) {
    if (fa[node] > fa[topic]) topic = node;
  }

  phrase::KertOptions kopt;
  role::EntityPhraseRanker ranker(mined.kert());
  auto print_ranking = [&](const char* label, const std::vector<int>& docs,
                           double alpha) {
    std::printf("%-26s:", label);
    for (const auto& [p, s] : ranker.Rank(topic, docs, kopt, alpha, 5)) {
      std::printf(" [%s]", mined.dict().ToString(p, ds.corpus.vocab()).c_str());
    }
    std::printf("\n");
  };
  std::printf("=== Table 5.1 analogue (topic %s) ===\n",
              mined.tree().node(topic).path.c_str());
  print_ranking("quality only (alpha=0)", docs_a, 0.0);
  print_ranking("author A entity-only", docs_a, 1.0);
  print_ranking("author A combined", docs_a, 0.5);
  print_ranking("author B entity-only", docs_b, 1.0);
  print_ranking("author B combined", docs_b, 0.5);

  std::printf("\n=== Figures 5.2/5.3 analogue: role trees ===\n");
  auto print_tree = [&](const char* name, const std::vector<double>& f) {
    std::printf("%s (%0.1f papers):\n", name, f[mined.tree().root()]);
    for (int id = 0; id < mined.tree().num_nodes(); ++id) {
      if (f[id] >= 0.5 && id != mined.tree().root()) {
        std::printf("  %-8s f=%.1f\n", mined.tree().node(id).path.c_str(),
                    f[id]);
      }
    }
  };
  // Root frequency = number of docs.
  fa[mined.tree().root()] = static_cast<double>(docs_a.size());
  fb[mined.tree().root()] = static_cast<double>(docs_b.size());
  print_tree("author A (planted subarea 0)", fa);
  print_tree("author B (planted subarea 1)", fb);
  std::printf("\nPaper shape: both authors live in the same level-1 topic "
              "but split at level 2 (their subareas), and the combined\n"
              "ranking surfaces each author's own signature phrases.\n");
  return 0;
}
