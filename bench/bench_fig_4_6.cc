// Reproduces Figure 4.6: decomposition of ToPMine's runtime into the
// phrase-mining portion (frequent mining + segmentation) and the
// topic-modeling portion (PhraseLDA), as the corpus grows.
//
// Paper shape to reproduce: both portions scale linearly in the number of
// documents, and phrase mining is a small fraction of PhraseLDA's time
// (~40x less at 2000 Gibbs iterations; we use fewer iterations, so report
// the ratio too).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "phrase/frequent_miner.h"
#include "phrase/phrase_lda.h"
#include "phrase/segmenter.h"

int main() {
  using namespace latent;
  std::printf("Figure 4.6: ToPMine runtime decomposition (abstract-like "
              "corpus, k=10, 200 Gibbs iterations)\n\n");
  bench::PrintHeader({"#docs", "mine+segment (s)", "PhraseLDA (s)",
                      "LDA/mining ratio"},
                     18);
  for (int docs : {2000, 5000, 10000, 20000}) {
    data::HinDatasetOptions gopt = data::DblpLikeOptions(docs, 80);
    gopt.with_entities = false;
    gopt.min_phrases_per_doc = 8;
    gopt.max_phrases_per_doc = 14;
    data::HinDataset ds = data::GenerateHinDataset(gopt);

    WallTimer t1;
    phrase::MinerOptions mopt;
    mopt.min_support = 8;
    phrase::PhraseDict dict = phrase::MineFrequentPhrases(ds.corpus, mopt);
    phrase::SegmenterOptions sopt;
    auto segmented = phrase::SegmentCorpus(ds.corpus, &dict, sopt);
    double mining_s = t1.Seconds();

    WallTimer t2;
    phrase::PhraseLdaOptions lopt;
    lopt.num_topics = 10;
    lopt.iterations = 200;
    lopt.seed = 81;
    phrase::FitPhraseLda(segmented, ds.corpus.vocab_size(), lopt);
    double lda_s = t2.Seconds();

    bench::PrintRow(std::to_string(docs),
                    {mining_s, lda_s, lda_s / std::max(mining_s, 1e-9)}, 18);
  }
  std::printf("\nPaper shape: linear scaling; mining portion negligible "
              "next to PhraseLDA.\n");
  return 0;
}
