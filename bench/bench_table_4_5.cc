// Reproduces Table 4.5: wall-clock runtime of topical-phrase methods on
// sampled and full corpora. Absolute numbers are hardware-specific; the
// paper's SHAPE is: ToPMine ~ LDA (sometimes faster, since phrases sample
// one topic per instance), KERT ~ LDA on titles, TNG several times slower,
// and Turbo-Topics-style permutation testing orders of magnitude slower
// (its permutation rounds are emulated; PD-LDA is not run, per DESIGN.md).
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/lda_gibbs.h"
#include "baselines/tng.h"
#include "baselines/turbo_lite.h"
#include "bench_util.h"
#include "common/timer.h"
#include "core/builder.h"
#include "phrase/kert.h"
#include "phrase/topmine.h"

namespace latent {
namespace {

double TimeLda(const text::Corpus& corpus, int iters) {
  WallTimer t;
  baselines::LdaOptions opt;
  opt.num_topics = 5;
  opt.iterations = iters;
  opt.seed = 90;
  baselines::FitLda(corpus, opt);
  return t.Seconds();
}

double TimeTopMine(const text::Corpus& corpus, int iters) {
  WallTimer t;
  phrase::TopMineOptions opt;
  opt.miner.min_support = 5;
  opt.lda.num_topics = 5;
  opt.lda.iterations = iters;
  opt.lda.seed = 91;
  phrase::RunTopMine(corpus, opt, 10);
  return t.Seconds();
}

double TimeKert(const text::Corpus& corpus, int iters) {
  // KERT = frequent mining + a topic model (here the CATHY EM) + ranking.
  WallTimer t;
  hin::HeteroNetwork net = hin::BuildTermCooccurrenceNetwork(corpus);
  core::BuildOptions bopt;
  bopt.levels_k = {5};
  bopt.max_depth = 1;
  bopt.cluster.background = false;
  bopt.cluster.restarts = 1;
  bopt.cluster.max_iters = iters / 2;
  bopt.cluster.seed = 92;
  core::TopicHierarchy tree = core::BuildHierarchy(net, bopt);
  phrase::MinerOptions mopt;
  mopt.min_support = 5;
  phrase::PhraseDict dict = phrase::MineFrequentPhrases(corpus, mopt);
  phrase::KertScorer kert(corpus, dict, tree);
  phrase::KertOptions kopt;
  for (int node : tree.NodesAtLevel(1)) kert.RankTopic(node, kopt, 20);
  return t.Seconds();
}

double TimeTng(const text::Corpus& corpus, int iters) {
  WallTimer t;
  baselines::TngOptions opt;
  opt.num_topics = 5;
  opt.iterations = iters;
  opt.seed = 93;
  baselines::FitTng(corpus, opt, 10);
  return t.Seconds();
}

double TimeTurbo(const text::Corpus& corpus, int iters) {
  WallTimer t;
  baselines::TurboLiteOptions opt;
  opt.lda.num_topics = 5;
  opt.lda.iterations = iters;
  opt.lda.seed = 94;
  opt.permutation_rounds = 30;  // emulated permutation-test cost
  baselines::FitTurboLite(corpus, opt, 10);
  return t.Seconds();
}

void RunCorpus(const char* title, const data::HinDataset& ds, int iters) {
  std::printf("\n== %s (%d docs, %lld tokens, %d iterations) ==\n", title,
              ds.corpus.num_docs(), ds.corpus.total_tokens(), iters);
  bench::PrintHeader({"method", "seconds"});
  bench::PrintRow("LDA", {TimeLda(ds.corpus, iters)});
  bench::PrintRow("ToPMine", {TimeTopMine(ds.corpus, iters)});
  bench::PrintRow("KERT", {TimeKert(ds.corpus, iters)});
  bench::PrintRow("TNG", {TimeTng(ds.corpus, iters)});
  bench::PrintRow("TurboTopics(emul)", {TimeTurbo(ds.corpus, iters)});
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Table 4.5: method runtimes (shape, not absolute numbers)\n");

  data::HinDatasetOptions titles = data::DblpLikeOptions(10000, 95);
  titles.with_entities = false;
  RunCorpus("DBLP-titles analogue (sampled)",
            data::GenerateHinDataset(titles), 150);

  data::HinDatasetOptions abstracts = data::DblpLikeOptions(4000, 96);
  abstracts.with_entities = false;
  abstracts.min_phrases_per_doc = 8;
  abstracts.max_phrases_per_doc = 14;
  RunCorpus("DBLP-abstracts analogue (sampled)",
            data::GenerateHinDataset(abstracts), 150);

  std::printf("\nPaper shape: ToPMine ~ LDA; TNG slower; permutation-based "
              "TurboTopics slowest; PD-LDA (not run) is reported in the\n"
              "paper as orders of magnitude beyond TNG.\n");
  return 0;
}
