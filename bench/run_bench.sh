#!/usr/bin/env bash
# Bench runner: executes the ch7 serving bench (in-process engine), the
# daemon bench (full TCP stack, including the resilience/restart-recovery
# section), the ch7 robustness bench (recovery error, checkpointing), the
# incremental-refresh bench (api::Refresh vs full re-mine), the
# micro-kernel Ref/Opt pairs (bench_micro_kernels), and the EM-iteration
# rows of bench_ch7_scalability, and assembles one BENCH_<n>.json so the
# repo carries a perf-trajectory baseline per PR (ROADMAP item 4; see
# docs/PERFORMANCE.md for how to read the deltas).
#
# Usage: bench/run_bench.sh [--check] [build-dir] [out.json]
# Defaults: build-dir = build, out.json = BENCH_10.json (in the repo root).
#
# --check: fast regression gate (registered as ctest bench.smoke). Re-runs
# ONLY the micro-kernel pairs and compares each kernel's Ref/Opt speedup
# ratio against the committed out.json; exits 1 if any ratio regressed by
# more than 15%. Ratios are dimensionless, so the gate is stable across
# machines of different absolute speed.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
check=0
if [ "${1:-}" = "--check" ]; then
  check=1
  shift
fi
build="${1:-$root/build}"
out="${2:-$root/BENCH_10.json}"

kernels_bin="$build/bench/bench_micro_kernels"
if [ ! -x "$kernels_bin" ]; then
  echo "run_bench: $kernels_bin not built (cmake --build $build)" >&2
  exit 1
fi

run_kernels() {
  # 5 repetitions per benchmark; the Ref/Opt pairs only (the whole-pipeline
  # BM_* cases are too slow for the smoke gate). The parsers below take the
  # MIN across repetitions: timing noise is one-sided (interference only
  # ever adds time), so the ratio of minimums is far more stable run-to-run
  # than the ratio of medians on a busy box.
  "$kernels_bin" \
    --benchmark_filter='BM_Kernel(Dot|RowNormalize|LogSumExp|CoocAccumulate)(Ref|Opt)$' \
    --benchmark_repetitions=5 \
    --benchmark_format=json 2>/dev/null
}

# check_once <joined-docs> — compares the best (minimum) time per kernel
# across every \x1e-joined benchmark JSON doc against the committed
# baseline; exit 1 when any kernel's speedup ratio fell more than 15%
# below its committed value.
check_once() {
  KERNELS_JSON="$1" BASELINE="$out" python3 - <<'EOF'
import json, os, sys

base = json.load(open(os.environ["BASELINE"]))

best = {}
for doc in os.environ["KERNELS_JSON"].split("\x1e"):
    bench = json.loads(doc)
    for row in bench.get("benchmarks", []):
        if row.get("run_type") == "iteration":
            t = float(row["real_time"])
            name = row["run_name"]
            if name not in best or t < best[name]:
                best[name] = t

pairs = {
    "dot": "BM_KernelDot",
    "row_normalize": "BM_KernelRowNormalize",
    "logsumexp": "BM_KernelLogSumExp",
    "cooc_accumulate": "BM_KernelCoocAccumulate",
}
failed = False
for key, prefix in pairs.items():
    ref, opt = best.get(prefix + "Ref"), best.get(prefix + "Opt")
    if ref is None or opt is None or opt <= 0:
        print(f"run_bench: missing timings for {prefix}", file=sys.stderr)
        failed = True
        continue
    speedup = ref / opt
    committed = base.get("kernels", {}).get(key, {}).get("speedup")
    if committed is None:
        print(f"run_bench: no committed speedup for {key} in baseline",
              file=sys.stderr)
        failed = True
        continue
    floor = committed * 0.85
    status = "ok" if speedup >= floor else "REGRESSED"
    print(f"run_bench: {key:16s} speedup {speedup:6.2f}x "
          f"(committed {committed:.2f}x, floor {floor:.2f}x) {status}")
    if speedup < floor:
        failed = True
sys.exit(1 if failed else 0)
EOF
}

if [ "$check" -eq 1 ]; then
  if [ ! -f "$out" ]; then
    echo "run_bench: --check needs a committed $out baseline" >&2
    exit 1
  fi
  echo "run_bench: --check (micro-kernel speedup ratios vs $out)..." >&2
  first="$(run_kernels)"
  if ! check_once "$first"; then
    # One retry absorbs transient interference on a busy box (timing noise
    # is one-sided): the combined best-of-both-measurements must clear the
    # floor. A real regression fails both times.
    echo "run_bench: --check retrying once (combined best-of-2)..." >&2
    second="$(run_kernels)"
    if ! check_once "$first"$'\x1e'"$second"; then
      echo "run_bench: --check FAILED (see REGRESSED rows above)" >&2
      exit 1
    fi
  fi
  echo "run_bench: --check passed" >&2
  exit 0
fi

serving_bin="$build/bench/bench_ch7_serving"
daemon_bin="$build/bench/bench_served_daemon"
robustness_bin="$build/bench/bench_ch7_robustness"
scalability_bin="$build/bench/bench_ch7_scalability"
refresh_bin="$build/bench/bench_ch7_refresh"
for bin in "$serving_bin" "$daemon_bin" "$robustness_bin" \
           "$scalability_bin" "$refresh_bin"; do
  if [ ! -x "$bin" ]; then
    echo "run_bench: $bin not built (cmake --build $build)" >&2
    exit 1
  fi
done

echo "run_bench: bench_micro_kernels (Ref/Opt pairs, best of 5)..." >&2
kernels_json="$(run_kernels)"
echo "run_bench: bench_ch7_scalability (includes em_iter rows)..." >&2
scalability_txt="$("$scalability_bin")"
echo "run_bench: bench_ch7_serving (engine, in-process)..." >&2
serving_txt="$("$serving_bin")"
echo "run_bench: bench_served_daemon (daemon, TCP)..." >&2
daemon_json="$("$daemon_bin")"
echo "run_bench: bench_ch7_robustness (recovery error, checkpointing)..." >&2
robustness_txt="$("$robustness_bin")"
echo "run_bench: bench_ch7_refresh (incremental re-mine vs scratch)..." >&2
refresh_txt="$("$refresh_bin")"

SERVING_TXT="$serving_txt" DAEMON_JSON="$daemon_json" \
ROBUSTNESS_TXT="$robustness_txt" KERNELS_JSON="$kernels_json" \
SCALABILITY_TXT="$scalability_txt" REFRESH_TXT="$refresh_txt" OUT="$out" \
python3 - <<'EOF'
import json, os, re

serving_txt = os.environ["SERVING_TXT"]
daemon = json.loads(os.environ["DAEMON_JSON"])
robustness_txt = os.environ["ROBUSTNESS_TXT"]
kernels_bench = json.loads(os.environ["KERNELS_JSON"])
scalability_txt = os.environ["SCALABILITY_TXT"]

# bench_ch7_serving rows: "<configuration (28 cols)><cold q/s><warm q/s>".
engine = {}
for line in serving_txt.splitlines():
    m = re.match(r"(\d+ threads?, cache (?:off|\S+))\s+(\d+)\s+(\d+)\s*$",
                 line.strip())
    if m:
        key = m.group(1).replace(", ", "_").replace(" ", "_")
        engine[key] = {"cold_qps": int(m.group(2)),
                       "warm_qps": int(m.group(3))}
if not engine:
    raise SystemExit("run_bench: no throughput rows parsed from "
                     "bench_ch7_serving output")

# bench_ch7_robustness section 1 rows: "<#docs> <STROD err> <STROD sd>
# <Gibbs err> <Gibbs sd>"; checkpoint rows: "<configuration> <wall s>
# <overhead %>"; one "resume vs scratch: ..." summary line.
num = r"([0-9.eE+-]+)"
recovery = {}
checkpoint = {}
resume = {}
for line in robustness_txt.splitlines():
    line = line.strip()
    m = re.match(rf"(\d+)\s+{num}\s+{num}\s+{num}\s+{num}$", line)
    if m:
        recovery[f"docs_{m.group(1)}"] = {
            "strod_err": float(m.group(2)), "strod_sd": float(m.group(3)),
            "gibbs_err": float(m.group(4)), "gibbs_sd": float(m.group(5))}
        continue
    m = re.match(rf"(no checkpointing|checkpoint every \d+ nodes)\s+"
                 rf"{num}\s+{num}$", line)
    if m:
        key = m.group(1).replace(" ", "_")
        checkpoint[key] = {"wall_s": float(m.group(2)),
                           "overhead_pct": float(m.group(3))}
        continue
    m = re.match(rf"resume vs scratch: scratch {num}s, resumed {num}s\s+"
                 rf"\({num}x speedup", line)
    if m:
        resume = {"scratch_s": float(m.group(1)),
                  "resumed_s": float(m.group(2)),
                  "speedup_x": float(m.group(3))}
if not recovery:
    raise SystemExit("run_bench: no recovery-error rows parsed from "
                     "bench_ch7_robustness output")

# bench_micro_kernels: best (minimum) time across repetitions per Ref/Opt
# pair — one-sided noise makes min the stable estimator. The tracked
# metric is the dimensionless speedup ratio (stable across machines); the
# raw per-call ns are carried for local before/after reading only.
best = {}
for row in kernels_bench.get("benchmarks", []):
    if row.get("run_type") == "iteration":
        t = float(row["real_time"])
        name = row["run_name"]
        if name not in best or t < best[name]:
            best[name] = t
kernels = {}
for key, prefix in [("dot", "BM_KernelDot"),
                    ("row_normalize", "BM_KernelRowNormalize"),
                    ("logsumexp", "BM_KernelLogSumExp"),
                    ("cooc_accumulate", "BM_KernelCoocAccumulate")]:
    ref, opt = best.get(prefix + "Ref"), best.get(prefix + "Opt")
    if ref is None or opt is None or opt <= 0:
        raise SystemExit(f"run_bench: missing timings for {prefix}")
    kernels[key] = {"ref_ns": round(ref, 1), "opt_ns": round(opt, 1),
                    "speedup": round(ref / opt, 3)}

# bench_ch7_refresh rows: one "refresh vs full: ..." summary line plus the
# dirty/clean/warm accounting row.
refresh_txt = os.environ["REFRESH_TXT"]
refresh = {}
for line in refresh_txt.splitlines():
    line = line.strip()
    m = re.match(rf"refresh vs full: full {num}s, refresh {num}s\s+"
                 rf"\({num}x speedup", line)
    if m:
        refresh.update({"full_remine_s": float(m.group(1)),
                        "refresh_s": float(m.group(2)),
                        "speedup_x": float(m.group(3))})
        continue
    m = re.match(r"refresh nodes: dirty (\d+) clean (\d+) warm_fits (\d+)",
                 line)
    if m:
        refresh.update({"nodes_dirty": int(m.group(1)),
                        "nodes_clean": int(m.group(2)),
                        "warm_fits": int(m.group(3))})
        continue
    m = re.match(r"docs base=(\d+) delta=(\d+)", line)
    if m:
        refresh.update({"base_docs": int(m.group(1)),
                        "delta_docs": int(m.group(2))})
if "speedup_x" not in refresh:
    raise SystemExit("run_bench: no speedup line parsed from "
                     "bench_ch7_refresh output")

# bench_ch7_scalability em_iter rows: "em_iter k=<k>  <mean_ms>  <p50_ms>".
em_iter = {}
for line in scalability_txt.splitlines():
    m = re.match(rf"em_iter k=(\d+)\s+{num}\s+{num}\s*$", line.strip())
    if m:
        em_iter[f"k{m.group(1)}"] = {"mean_ms": float(m.group(2)),
                                     "p50_ms": float(m.group(3))}
if not em_iter:
    raise SystemExit("run_bench: no em_iter rows parsed from "
                     "bench_ch7_scalability output")

doc = {
    "bench": "micro kernels + ch7 scalability (EM iteration) + ch7 serving "
             "+ latent_served daemon + ch7 robustness + incremental refresh",
    "kernels": kernels,
    "em_iteration_ms": em_iter,
    "engine_inprocess": engine,
    "daemon_tcp": daemon,
    "robustness": {
        "recovery_error": recovery,
        "checkpoint_overhead": checkpoint,
        "resume": resume,
    },
    "refresh": refresh,
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("run_bench: wrote", os.environ["OUT"])
EOF
