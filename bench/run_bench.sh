#!/usr/bin/env bash
# Bench runner: executes the ch7 serving bench (in-process engine) and the
# daemon bench (full TCP stack) and assembles one BENCH_<n>.json so the
# repo carries a perf-trajectory baseline per PR (ROADMAP item 4).
#
# Usage: bench/run_bench.sh [build-dir] [out.json]
# Defaults: build-dir = build, out.json = BENCH_7.json (in the repo root).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
out="${2:-$root/BENCH_7.json}"

serving_bin="$build/bench/bench_ch7_serving"
daemon_bin="$build/bench/bench_served_daemon"
for bin in "$serving_bin" "$daemon_bin"; do
  if [ ! -x "$bin" ]; then
    echo "run_bench: $bin not built (cmake --build $build)" >&2
    exit 1
  fi
done

echo "run_bench: bench_ch7_serving (engine, in-process)..." >&2
serving_txt="$("$serving_bin")"
echo "run_bench: bench_served_daemon (daemon, TCP)..." >&2
daemon_json="$("$daemon_bin")"

SERVING_TXT="$serving_txt" DAEMON_JSON="$daemon_json" OUT="$out" \
python3 - <<'EOF'
import json, os, re

serving_txt = os.environ["SERVING_TXT"]
daemon = json.loads(os.environ["DAEMON_JSON"])

# bench_ch7_serving rows: "<configuration (28 cols)><cold q/s><warm q/s>".
engine = {}
for line in serving_txt.splitlines():
    m = re.match(r"(\d+ threads?, cache (?:off|\S+))\s+(\d+)\s+(\d+)\s*$",
                 line.strip())
    if m:
        key = m.group(1).replace(", ", "_").replace(" ", "_")
        engine[key] = {"cold_qps": int(m.group(2)),
                       "warm_qps": int(m.group(3))}
if not engine:
    raise SystemExit("run_bench: no throughput rows parsed from "
                     "bench_ch7_serving output")

doc = {
    "bench": "ch7 serving + latent_served daemon",
    "engine_inprocess": engine,
    "daemon_tcp": daemon,
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("run_bench: wrote", os.environ["OUT"])
EOF
