#!/usr/bin/env bash
# Bench runner: executes the ch7 serving bench (in-process engine), the
# daemon bench (full TCP stack, including the resilience/restart-recovery
# section), and the ch7 robustness bench (recovery error, checkpointing),
# and assembles one BENCH_<n>.json so the repo carries a perf-trajectory
# baseline per PR (ROADMAP item 4).
#
# Usage: bench/run_bench.sh [build-dir] [out.json]
# Defaults: build-dir = build, out.json = BENCH_8.json (in the repo root).
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
out="${2:-$root/BENCH_8.json}"

serving_bin="$build/bench/bench_ch7_serving"
daemon_bin="$build/bench/bench_served_daemon"
robustness_bin="$build/bench/bench_ch7_robustness"
for bin in "$serving_bin" "$daemon_bin" "$robustness_bin"; do
  if [ ! -x "$bin" ]; then
    echo "run_bench: $bin not built (cmake --build $build)" >&2
    exit 1
  fi
done

echo "run_bench: bench_ch7_serving (engine, in-process)..." >&2
serving_txt="$("$serving_bin")"
echo "run_bench: bench_served_daemon (daemon, TCP)..." >&2
daemon_json="$("$daemon_bin")"
echo "run_bench: bench_ch7_robustness (recovery error, checkpointing)..." >&2
robustness_txt="$("$robustness_bin")"

SERVING_TXT="$serving_txt" DAEMON_JSON="$daemon_json" \
ROBUSTNESS_TXT="$robustness_txt" OUT="$out" \
python3 - <<'EOF'
import json, os, re

serving_txt = os.environ["SERVING_TXT"]
daemon = json.loads(os.environ["DAEMON_JSON"])
robustness_txt = os.environ["ROBUSTNESS_TXT"]

# bench_ch7_serving rows: "<configuration (28 cols)><cold q/s><warm q/s>".
engine = {}
for line in serving_txt.splitlines():
    m = re.match(r"(\d+ threads?, cache (?:off|\S+))\s+(\d+)\s+(\d+)\s*$",
                 line.strip())
    if m:
        key = m.group(1).replace(", ", "_").replace(" ", "_")
        engine[key] = {"cold_qps": int(m.group(2)),
                       "warm_qps": int(m.group(3))}
if not engine:
    raise SystemExit("run_bench: no throughput rows parsed from "
                     "bench_ch7_serving output")

# bench_ch7_robustness section 1 rows: "<#docs> <STROD err> <STROD sd>
# <Gibbs err> <Gibbs sd>"; checkpoint rows: "<configuration> <wall s>
# <overhead %>"; one "resume vs scratch: ..." summary line.
num = r"([0-9.eE+-]+)"
recovery = {}
checkpoint = {}
resume = {}
for line in robustness_txt.splitlines():
    line = line.strip()
    m = re.match(rf"(\d+)\s+{num}\s+{num}\s+{num}\s+{num}$", line)
    if m:
        recovery[f"docs_{m.group(1)}"] = {
            "strod_err": float(m.group(2)), "strod_sd": float(m.group(3)),
            "gibbs_err": float(m.group(4)), "gibbs_sd": float(m.group(5))}
        continue
    m = re.match(rf"(no checkpointing|checkpoint every \d+ nodes)\s+"
                 rf"{num}\s+{num}$", line)
    if m:
        key = m.group(1).replace(" ", "_")
        checkpoint[key] = {"wall_s": float(m.group(2)),
                           "overhead_pct": float(m.group(3))}
        continue
    m = re.match(rf"resume vs scratch: scratch {num}s, resumed {num}s\s+"
                 rf"\({num}x speedup", line)
    if m:
        resume = {"scratch_s": float(m.group(1)),
                  "resumed_s": float(m.group(2)),
                  "speedup_x": float(m.group(3))}
if not recovery:
    raise SystemExit("run_bench: no recovery-error rows parsed from "
                     "bench_ch7_robustness output")

doc = {
    "bench": "ch7 serving + latent_served daemon + ch7 robustness",
    "engine_inprocess": engine,
    "daemon_tcp": daemon,
    "robustness": {
        "recovery_error": recovery,
        "checkpoint_overhead": checkpoint,
        "resume": resume,
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print("run_bench: wrote", os.environ["OUT"])
EOF
