// Reproduces Table 5.3: top-ranked entities per subtopic under popularity
// only (ERank_Pop) versus popularity x purity (ERank_Pop+Pur).
//
// Paper shape to reproduce: with popularity alone, prolific entities appear
// in several subtopics' top lists; adding purity removes the overlap, so
// each subtopic's list is dominated by its own dedicated entities.
#include <cstdio>
#include <set>
#include <vector>

#include "api/latent.h"
#include "bench_util.h"
#include "role/role_analysis.h"

int main() {
  using namespace latent;
  std::printf("Table 5.3: entity ranking with and without purity\n\n");

  // Plant some "prolific generalists": entities that publish across all
  // subareas of an area, via a high cross-subarea collaboration rate.
  data::HinDatasetOptions gopt = data::DblpLikeOptions(5000, 402);
  gopt.num_areas = 2;
  gopt.subareas_per_area = 4;
  gopt.cross_subarea_entity_prob = 0.35;
  data::HinDataset ds = data::GenerateHinDataset(gopt);

  api::PipelineOptions popt;
  popt.build.levels_k = {2, 4};
  popt.build.max_depth = 2;
  popt.build.cluster.weight_mode = core::LinkWeightMode::kLearned;
  popt.build.cluster.restarts = 2;
  popt.build.cluster.max_iters = 60;
  popt.build.cluster.seed = 19;
  popt.miner.min_support = 5;
  popt.exec.num_threads = 0;
  latent::StatusOr<api::MinedHierarchy> mined_or =
      api::Mine(api::PipelineInput(
                    ds.corpus,
                    api::EntitySchema(ds.entity_type_names,
                                      ds.entity_type_sizes),
                    ds.entity_docs),
                popt);
  const api::MinedHierarchy& mined = mined_or.value();

  // Subtopics of the first level-1 node.
  int parent = mined.tree().NodesAtLevel(1)[0];
  const std::vector<int>& subs = mined.tree().node(parent).children;

  auto print_and_collect = [&](bool purity) {
    std::printf("== ERank_%s ==\n", purity ? "Pop+Pur" : "Pop");
    std::vector<std::set<int>> lists;
    for (int node : subs) {
      std::printf("%s:", mined.tree().node(node).path.c_str());
      std::set<int> ids;
      for (const auto& [e, s] :
           role::RankEntitiesForTopic(mined.tree(), node, 1, purity, 5)) {
        std::printf(" author%d(sub%d)", e, ds.entity0_subarea[e]);
        ids.insert(e);
      }
      std::printf("\n");
      lists.push_back(std::move(ids));
    }
    // Count entities appearing in more than one subtopic's top-5.
    int overlap = 0;
    for (size_t i = 0; i < lists.size(); ++i) {
      for (size_t j = i + 1; j < lists.size(); ++j) {
        for (int e : lists[i]) overlap += lists[j].count(e);
      }
    }
    std::printf("cross-subtopic overlap in top-5 lists: %d\n\n", overlap);
    return overlap;
  };

  int overlap_pop = print_and_collect(false);
  int overlap_pur = print_and_collect(true);
  std::printf("Paper shape: overlap with purity (%d) <= overlap without "
              "(%d).\n", overlap_pur, overlap_pop);
  return 0;
}
