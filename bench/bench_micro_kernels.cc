// Google-benchmark micro-kernels for the hot loops: one CATHYHIN EM
// iteration, one PhraseLDA Gibbs sweep, frequent phrase mining, the
// whitened tensor power step, and TPFG message passing. These are the
// per-iteration costs behind the runtime tables (4.5, 7.4.1).
#include <benchmark/benchmark.h>

#include "core/clusterer.h"
#include "data/advisor_gen.h"
#include "data/lda_gen.h"
#include "data/synthetic_hin.h"
#include "phrase/frequent_miner.h"
#include "phrase/phrase_lda.h"
#include "relation/tpfg.h"
#include "relation/tpfg_preprocess.h"
#include "strod/strod.h"

namespace latent {
namespace {

const data::HinDataset& SharedHin() {
  static const data::HinDataset* const ds = [] {
    data::HinDatasetOptions opt = data::DblpLikeOptions(2000, 1001);
    return new data::HinDataset(data::GenerateHinDataset(opt));
  }();
  return *ds;
}

void BM_CathyHinEmIteration(benchmark::State& state) {
  const data::HinDataset& ds = SharedHin();
  hin::HeteroNetwork net = hin::BuildCollapsedNetwork(
      ds.corpus, ds.entity_type_names, ds.entity_type_sizes, ds.entity_docs);
  auto parent = core::DegreeDistributions(net);
  core::ClusterOptions opt;
  opt.num_topics = 6;
  opt.max_iters = 1;  // a single EM iteration per fit
  opt.restarts = 1;
  opt.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FitCluster(net, parent, opt));
  }
  state.SetItemsProcessed(state.iterations() * net.NumLinks());
}
BENCHMARK(BM_CathyHinEmIteration)->Unit(benchmark::kMillisecond);

void BM_PhraseLdaSweep(benchmark::State& state) {
  const data::HinDataset& ds = SharedHin();
  auto instances = phrase::UnigramInstances(ds.corpus);
  phrase::PhraseLdaOptions opt;
  opt.num_topics = 6;
  opt.iterations = 1;
  opt.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phrase::FitPhraseLda(instances, ds.corpus.vocab_size(), opt));
  }
  state.SetItemsProcessed(state.iterations() * ds.corpus.total_tokens());
}
BENCHMARK(BM_PhraseLdaSweep)->Unit(benchmark::kMillisecond);

void BM_FrequentPhraseMining(benchmark::State& state) {
  const data::HinDataset& ds = SharedHin();
  phrase::MinerOptions opt;
  opt.min_support = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phrase::MineFrequentPhrases(ds.corpus, opt));
  }
  state.SetItemsProcessed(state.iterations() * ds.corpus.total_tokens());
}
BENCHMARK(BM_FrequentPhraseMining)->Unit(benchmark::kMillisecond);

void BM_StrodFit(benchmark::State& state) {
  static const data::LdaDataset* const ds = [] {
    data::LdaGenOptions opt;
    opt.num_docs = 2000;
    opt.vocab_size = 400;
    opt.seed = 7;
    return new data::LdaDataset(data::GenerateLdaDataset(opt));
  }();
  strod::StrodOptions opt;
  opt.num_topics = 5;
  opt.seed = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strod::FitStrod(ds->docs, ds->vocab_size, opt));
  }
}
BENCHMARK(BM_StrodFit)->Unit(benchmark::kMillisecond);

void BM_TpfgInference(benchmark::State& state) {
  static const data::AdvisorDataset* const ds = [] {
    data::AdvisorGenOptions opt;
    opt.num_root_advisors = 40;
    opt.seed = 11;
    return new data::AdvisorDataset(data::GenerateAdvisorDataset(opt));
  }();
  relation::PreprocessOptions popt;
  relation::CandidateDag dag = relation::BuildCandidateDag(*ds->network, popt);
  relation::TpfgOptions topt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relation::RunTpfg(dag, topt));
  }
  state.SetItemsProcessed(state.iterations() * ds->num_authors);
}
BENCHMARK(BM_TpfgInference)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace latent

BENCHMARK_MAIN();
