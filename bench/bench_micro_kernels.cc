// Google-benchmark micro-kernels for the hot loops: one CATHYHIN EM
// iteration, one PhraseLDA Gibbs sweep, frequent phrase mining, the
// whitened tensor power step, and TPFG message passing. These are the
// per-iteration costs behind the runtime tables (4.5, 7.4.1).
//
// The BM_Kernel*Ref / BM_Kernel*Opt pairs are the before/after table for
// the hot-kernel pass (docs/PERFORMANCE.md): Ref is the seed-era scalar
// loop (serial reduction chain, divide per element, nested-vector AoS
// layout), Opt is the common/math_util.h kernel the hot path now runs.
// bench/run_bench.sh turns each pair into a kernel_speedup_* ratio in
// BENCH_*.json; the --check mode guards those ratios, which are
// dimensionless and therefore stable across machines.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "core/clusterer.h"
#include "data/advisor_gen.h"
#include "data/lda_gen.h"
#include "data/synthetic_hin.h"
#include "phrase/frequent_miner.h"
#include "phrase/phrase_lda.h"
#include "relation/tpfg.h"
#include "relation/tpfg_preprocess.h"
#include "strod/strod.h"

namespace latent {
namespace {

const data::HinDataset& SharedHin() {
  static const data::HinDataset* const ds = [] {
    data::HinDatasetOptions opt = data::DblpLikeOptions(2000, 1001);
    return new data::HinDataset(data::GenerateHinDataset(opt));
  }();
  return *ds;
}

std::vector<double> RandomPositive(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform() + 1e-3;
  return v;
}

constexpr size_t kVecLen = 4096;

// Dot product: serial accumulation chain vs the four-lane KernelDot.
void BM_KernelDotRef(benchmark::State& state) {
  const std::vector<double> a = RandomPositive(kVecLen, 21);
  const std::vector<double> b = RandomPositive(kVecLen, 22);
  for (auto _ : state) {
    double s = 0.0;
    for (size_t i = 0; i < kVecLen; ++i) s += a[i] * b[i];
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kVecLen);
}
BENCHMARK(BM_KernelDotRef);

void BM_KernelDotOpt(benchmark::State& state) {
  const std::vector<double> a = RandomPositive(kVecLen, 21);
  const std::vector<double> b = RandomPositive(kVecLen, 22);
  for (auto _ : state) {
    double s = KernelDot(a.data(), b.data(), kVecLen);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * kVecLen);
}
BENCHMARK(BM_KernelDotOpt);

// Row normalize: divide per element vs one divide + multiply sweep.
// Normalizing an already-normalized row does identical work, so the buffer
// is set up once and re-normalized every iteration.
void BM_KernelRowNormalizeRef(benchmark::State& state) {
  std::vector<double> v = RandomPositive(kVecLen, 23);
  for (auto _ : state) {
    double total = 0.0;
    for (size_t i = 0; i < kVecLen; ++i) total += v[i];
    for (size_t i = 0; i < kVecLen; ++i) v[i] /= total;
    benchmark::DoNotOptimize(v.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kVecLen);
}
BENCHMARK(BM_KernelRowNormalizeRef);

void BM_KernelRowNormalizeOpt(benchmark::State& state) {
  std::vector<double> v = RandomPositive(kVecLen, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelRowNormalize(v.data(), kVecLen));
    benchmark::DoNotOptimize(v.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kVecLen);
}
BENCHMARK(BM_KernelRowNormalizeOpt);

// Log-sum-exp: max_element + serial exp sum vs the four-lane kernel. Both
// are exp-call bound, so the win here is modest by design.
void BM_KernelLogSumExpRef(benchmark::State& state) {
  const std::vector<double> v = RandomPositive(kVecLen, 24);
  for (auto _ : state) {
    double m = v[0];
    for (size_t i = 1; i < kVecLen; ++i) m = v[i] > m ? v[i] : m;
    double s = 0.0;
    for (size_t i = 0; i < kVecLen; ++i) s += std::exp(v[i] - m);
    benchmark::DoNotOptimize(m + std::log(s));
  }
  state.SetItemsProcessed(state.iterations() * kVecLen);
}
BENCHMARK(BM_KernelLogSumExpRef);

void BM_KernelLogSumExpOpt(benchmark::State& state) {
  const std::vector<double> v = RandomPositive(kVecLen, 24);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KernelLogSumExp(v.data(), kVecLen));
  }
  state.SetItemsProcessed(state.iterations() * kVecLen);
}
BENCHMARK(BM_KernelLogSumExpOpt);

// E-step co-occurrence accumulation for a batch of links: the seed-era
// AoS path (nested per-topic vectors, phi[z][i] pointer chase per topic)
// vs the SoA path (node-major unit-stride reads, topic-major strided
// accumulation) the clusterer now runs.
struct CoocFixture {
  static constexpr int kTopics = 8;
  static constexpr int kNodes = 8192;   // per type
  static constexpr int kLinks = 16384;  // type-0 <-> type-1
  std::vector<double> rho;
  // Seed-era AoS layout: phi[z][x][i] nested vectors, as the clusterer
  // stored them before the SoA pass.
  std::vector<std::vector<std::vector<double>>> phi_aos;
  // SoA node-major view per type: phi_nm[x][i * k + z].
  std::vector<std::vector<double>> phi_nm;
  std::vector<int> src, dst;
  std::vector<double> weight;

  CoocFixture() {
    Rng rng(31);
    rho = RandomPositive(kTopics, 32);
    phi_aos.assign(kTopics, std::vector<std::vector<double>>(2));
    phi_nm.assign(2, std::vector<double>(
                         static_cast<size_t>(kNodes) * kTopics, 0.0));
    for (int z = 0; z < kTopics; ++z) {
      for (int x = 0; x < 2; ++x) {
        phi_aos[z][x] = RandomPositive(kNodes, 33 + 2 * z + x);
        for (int i = 0; i < kNodes; ++i) {
          phi_nm[x][static_cast<size_t>(i) * kTopics + z] = phi_aos[z][x][i];
        }
      }
    }
    for (int l = 0; l < kLinks; ++l) {
      src.push_back(rng.UniformInt(kNodes));
      dst.push_back(rng.UniformInt(kNodes));
      weight.push_back(rng.Uniform() + 0.5);
    }
  }
};

void BM_KernelCoocAccumulateRef(benchmark::State& state) {
  static const CoocFixture& f = *new CoocFixture();
  const int k = CoocFixture::kTopics;
  std::vector<double> new_rho(k, 0.0);
  std::vector<std::vector<std::vector<double>>> new_phi(
      k, std::vector<std::vector<double>>(
             2, std::vector<double>(CoocFixture::kNodes, 0.0)));
  std::vector<double> s(k);
  for (auto _ : state) {
    for (int l = 0; l < CoocFixture::kLinks; ++l) {
      const int i = f.src[l], j = f.dst[l];
      double denom = 0.0;
      for (int z = 0; z < k; ++z) {
        s[z] = f.rho[z] * f.phi_aos[z][0][i] * f.phi_aos[z][1][j];
        denom += s[z];
      }
      const double inv = f.weight[l] / denom;
      for (int z = 0; z < k; ++z) {
        const double ehat = s[z] * inv;
        new_rho[z] += ehat;
        new_phi[z][0][i] += ehat;
        new_phi[z][1][j] += ehat;
      }
    }
    benchmark::DoNotOptimize(new_rho.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * CoocFixture::kLinks);
}
BENCHMARK(BM_KernelCoocAccumulateRef);

void BM_KernelCoocAccumulateOpt(benchmark::State& state) {
  static const CoocFixture& f = *new CoocFixture();
  const int k = CoocFixture::kTopics;
  const size_t stride = CoocFixture::kNodes;
  std::vector<double> new_rho(k, 0.0);
  std::vector<std::vector<double>> acc(
      2, std::vector<double>(static_cast<size_t>(k) * stride, 0.0));
  for (auto _ : state) {
    for (int l = 0; l < CoocFixture::kLinks; ++l) {
      const int i = f.src[l], j = f.dst[l];
      const double* xi = f.phi_nm[0].data() + static_cast<size_t>(i) * k;
      const double* yj = f.phi_nm[1].data() + static_cast<size_t>(j) * k;
      const double denom = KernelCoocDenom(f.rho.data(), xi, yj, k);
      const double inv = f.weight[l] / denom;
      KernelCoocAccumulate(f.rho.data(), xi, yj, inv, 0, k, new_rho.data(),
                           acc[0].data() + i, stride, acc[1].data() + j,
                           stride);
    }
    benchmark::DoNotOptimize(new_rho.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * CoocFixture::kLinks);
}
BENCHMARK(BM_KernelCoocAccumulateOpt);

void BM_CathyHinEmIteration(benchmark::State& state) {
  const data::HinDataset& ds = SharedHin();
  hin::HeteroNetwork net = hin::BuildCollapsedNetwork(
      ds.corpus, ds.entity_type_names, ds.entity_type_sizes, ds.entity_docs);
  auto parent = core::DegreeDistributions(net);
  core::ClusterOptions opt;
  opt.num_topics = 6;
  opt.max_iters = 1;  // a single EM iteration per fit
  opt.restarts = 1;
  opt.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FitCluster(net, parent, opt));
  }
  state.SetItemsProcessed(state.iterations() * net.NumLinks());
}
BENCHMARK(BM_CathyHinEmIteration)->Unit(benchmark::kMillisecond);

void BM_PhraseLdaSweep(benchmark::State& state) {
  const data::HinDataset& ds = SharedHin();
  auto instances = phrase::UnigramInstances(ds.corpus);
  phrase::PhraseLdaOptions opt;
  opt.num_topics = 6;
  opt.iterations = 1;
  opt.seed = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phrase::FitPhraseLda(instances, ds.corpus.vocab_size(), opt));
  }
  state.SetItemsProcessed(state.iterations() * ds.corpus.total_tokens());
}
BENCHMARK(BM_PhraseLdaSweep)->Unit(benchmark::kMillisecond);

void BM_FrequentPhraseMining(benchmark::State& state) {
  const data::HinDataset& ds = SharedHin();
  phrase::MinerOptions opt;
  opt.min_support = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(phrase::MineFrequentPhrases(ds.corpus, opt));
  }
  state.SetItemsProcessed(state.iterations() * ds.corpus.total_tokens());
}
BENCHMARK(BM_FrequentPhraseMining)->Unit(benchmark::kMillisecond);

void BM_StrodFit(benchmark::State& state) {
  static const data::LdaDataset* const ds = [] {
    data::LdaGenOptions opt;
    opt.num_docs = 2000;
    opt.vocab_size = 400;
    opt.seed = 7;
    return new data::LdaDataset(data::GenerateLdaDataset(opt));
  }();
  core::SpectralOptions opt;
  opt.num_topics = 5;
  opt.seed = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(strod::FitStrod(ds->docs, ds->vocab_size, opt));
  }
}
BENCHMARK(BM_StrodFit)->Unit(benchmark::kMillisecond);

void BM_TpfgInference(benchmark::State& state) {
  static const data::AdvisorDataset* const ds = [] {
    data::AdvisorGenOptions opt;
    opt.num_root_advisors = 40;
    opt.seed = 11;
    return new data::AdvisorDataset(data::GenerateAdvisorDataset(opt));
  }();
  relation::PreprocessOptions popt;
  relation::CandidateDag dag = relation::BuildCandidateDag(*ds->network, popt);
  relation::TpfgOptions topt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(relation::RunTpfg(dag, topt));
  }
  state.SetItemsProcessed(state.iterations() * ds->num_authors);
}
BENCHMARK(BM_TpfgInference)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace latent

BENCHMARK_MAIN();
