// Daemon-path serving bench: the latent::served stack measured over real
// loopback TCP sockets (frame codecs, admission queue, worker dispatch,
// per-request RunContext), not just the in-process engine of
// bench_ch7_serving. Emits one JSON object on stdout — bench/run_bench.sh
// folds it into BENCH_<n>.json:
//
//   * cold_qps / warm_qps — a client-thread pool replaying a distinct-query
//     workload through the daemon; cold = first pass on a fresh snapshot
//     (result cache empty), warm = repeats of the identical batch;
//   * overload — a deliberately tiny daemon (1 worker, queue of 1) with the
//     served.stall failpoint armed, hammered by short connections: shed
//     rate and the mean time a shed connection waits for its
//     kResourceExhausted answer (the load-shedding latency promise);
//   * resilience — a ResilientClient replays the workload while the frame
//     codecs randomly fail (runtime fault schedule), then the daemon is
//     restarted on the same port mid-stream: retries/reconnects absorbed,
//     plus the client-observed restart recovery latency;
//   * swap_pause_us — PublishSnapshot wall time over repeated hot swaps
//     while a client thread keeps querying: the pause a swap could impose
//     on traffic (the RCU publish is one atomic store, so this should stay
//     microseconds, not milliseconds).
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/latent.h"
#include "common/check.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "data/synthetic_hin.h"
#include "obs/obs.h"
#include "served/protocol.h"
#include "served/resilient_client.h"
#include "served/server.h"
#include "served/snapshot.h"
#include "serve/engine.h"

using namespace latent;

namespace {

struct Workload {
  std::vector<served::WireRequest> requests;
};

served::WireRequest Req(served::Verb verb, std::string arg, int k = -1) {
  served::WireRequest req;
  req.verb = verb;
  req.arg = std::move(arg);
  req.k = k;
  return req;
}

// Same distinct-query mix as bench_ch7_serving's workload, rendered into
// wire requests: every topic looked up and walked, every 2nd phrase
// searched, every entity resolved.
Workload BuildWorkload(const serve::HierarchyIndex& index) {
  Workload w;
  for (int id = 0; id < index.num_topics(); ++id) {
    w.requests.push_back(Req(served::Verb::kLookup, index.topic(id).path));
    w.requests.push_back(Req(served::Verb::kSubtree, index.topic(id).path, 1));
  }
  for (int p = 0; p < index.num_phrases(); p += 2) {
    w.requests.push_back(Req(served::Verb::kSearch, index.phrase_text(p), 10));
  }
  for (int type = 1; type < index.num_types(); ++type) {
    const std::string& type_name = index.type_names()[type];
    for (int e = 0; e < index.type_sizes()[type]; ++e) {
      w.requests.push_back(Req(served::Verb::kEntity,
                               type_name + ":" + index.name(type, e), 10));
    }
  }
  return w;
}

std::unique_ptr<const serve::QueryEngine> BuildEngine(
    const api::MinedHierarchy& mined) {
  StatusOr<serve::HierarchyIndex> index = mined.MakeIndex();
  LATENT_CHECK_MSG(index.ok(), "bench index must build");
  serve::QueryOptions qopt;
  StatusOr<std::unique_ptr<serve::QueryEngine>> engine =
      serve::QueryEngine::Create(std::move(index.value()), qopt, nullptr);
  LATENT_CHECK_MSG(engine.ok(), "bench engine must build");
  return std::move(engine.value());
}

// Replays the workload through `threads` persistent connections, striped
// round-robin. Returns queries/sec; every response must be kOk.
double Replay(int port, const Workload& w, int threads, int rounds) {
  std::atomic<long long> errors{0};
  WallTimer timer;
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      served::Client client;
      if (!client.Connect(port).ok()) {
        errors.fetch_add(1);
        return;
      }
      for (int r = 0; r < rounds; ++r) {
        for (size_t i = t; i < w.requests.size(); i += threads) {
          StatusOr<served::WireResponse> resp = client.Call(w.requests[i]);
          if (!resp.ok() || resp.value().code != StatusCode::kOk) {
            errors.fetch_add(1);
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = timer.Seconds();
  LATENT_CHECK_MSG(errors.load() == 0, "bench replay saw failed requests");
  return rounds * w.requests.size() / seconds;
}

}  // namespace

int main() {
  std::signal(SIGPIPE, SIG_IGN);

  data::HinDatasetOptions gopt;
  gopt.num_areas = 4;
  gopt.subareas_per_area = 3;
  gopt.num_docs = 1500;
  gopt.seed = 77;
  data::HinDataset ds = data::GenerateHinDataset(gopt);

  api::PipelineOptions opt;
  opt.build.levels_k = {4, 3};
  opt.build.max_depth = 2;
  opt.miner.min_support = 5;
  api::PipelineInput input(
      ds.corpus, api::EntitySchema(ds.entity_type_names, ds.entity_type_sizes),
      ds.entity_docs);
  StatusOr<api::MinedHierarchy> mined = api::Mine(input, opt);
  LATENT_CHECK_MSG(mined.ok(), "bench corpus must mine");

  StatusOr<serve::HierarchyIndex> probe = mined.value().MakeIndex();
  LATENT_CHECK_MSG(probe.ok(), "bench index must build");
  const Workload workload = BuildWorkload(probe.value());

  // ---- Cold / warm throughput over TCP ----------------------------------
  constexpr int kClientThreads = 4;
  double cold_qps = 0.0, warm_qps = 0.0;
  {
    exec::ExecOptions eopt;
    eopt.num_threads = kClientThreads;
    exec::Executor ex(eopt);
    served::SnapshotHandle snapshots;
    served::ServedOptions sopt;
    sopt.max_inflight = kClientThreads;
    sopt.max_queue = 64;
    StatusOr<std::unique_ptr<served::Server>> server =
        served::Server::Start(&snapshots, sopt, &ex);
    LATENT_CHECK_MSG(server.ok(), "bench daemon must start");
    LATENT_CHECK_MSG(
        server.value()->PublishSnapshot(BuildEngine(mined.value())).ok(),
        "bench publish must succeed");
    // Cold: first pass on the fresh snapshot (empty result cache).
    cold_qps = Replay(server.value()->port(), workload, kClientThreads, 1);
    // Warm: repeats of the identical batch — cache-hit path + wire cost.
    warm_qps = Replay(server.value()->port(), workload, kClientThreads, 5);
    server.value()->RequestShutdown();
    LATENT_CHECK_MSG(server.value()->Wait().ok(), "bench drain must be clean");
  }

  // ---- Shed rate + shed latency under overload --------------------------
  long long offered = 0, served_ok = 0, shed = 0;
  double shed_wait_total_ms = 0.0;
#if defined(LATENT_FAILPOINTS_ENABLED)
  {
    exec::ExecOptions eopt;
    eopt.num_threads = 1;
    exec::Executor ex(eopt);
    served::SnapshotHandle snapshots;
    served::ServedOptions sopt;
    sopt.max_inflight = 1;
    sopt.max_queue = 1;
    sopt.retry_after_ms = 25;
    StatusOr<std::unique_ptr<served::Server>> server =
        served::Server::Start(&snapshots, sopt, &ex);
    LATENT_CHECK_MSG(server.ok(), "bench overload daemon must start");
    LATENT_CHECK_MSG(
        server.value()->PublishSnapshot(BuildEngine(mined.value())).ok(),
        "bench publish must succeed");
    // Every dispatched request stalls 25 ms, so one worker caps at ~40
    // requests/sec while four threads offer far more: the rest must shed.
    run::failpoint::Arm("served.stall", /*count=*/-1);
    constexpr int kOverloadThreads = 4;
    constexpr int kPerThread = 25;
    std::atomic<long long> n_offered{0}, n_served{0}, n_shed{0};
    std::atomic<long long> shed_wait_us{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kOverloadThreads; ++t) {
      clients.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          served::Client client;
          if (!client.Connect(server.value()->port()).ok()) continue;
          n_offered.fetch_add(1);
          WallTimer call_timer;
          StatusOr<served::WireResponse> resp =
              client.Call(workload.requests[i % workload.requests.size()]);
          if (!resp.ok()) continue;
          if (resp.value().code == StatusCode::kOk) {
            n_served.fetch_add(1);
          } else if (resp.value().code == StatusCode::kResourceExhausted) {
            n_shed.fetch_add(1);
            shed_wait_us.fetch_add(
                static_cast<long long>(call_timer.Seconds() * 1e6));
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    run::failpoint::DisarmAll();
    server.value()->RequestShutdown();
    (void)server.value()->Wait();
    offered = n_offered.load();
    served_ok = n_served.load();
    shed = n_shed.load();
    shed_wait_total_ms = shed_wait_us.load() / 1000.0;
  }
#endif

  // ---- Resilience: ResilientClient under faults + restart recovery ------
  // A ResilientClient drives the workload through a daemon whose frame
  // codecs randomly fail (when failpoints are compiled in), then the
  // daemon is torn down and restarted on the same port mid-stream:
  // retries/reconnects quantify the absorbed faults, recovery_ms the
  // client-observed gap a full restart imposes.
  long long resilient_calls = 0, resilient_errors = 0;
  long long resilient_retries = 0, resilient_reconnects = 0;
  double recovery_ms = 0.0;
  {
    obs::Registry metrics;
    served::PreRegisterClientMetrics(&metrics);
    served::ServedOptions sopt;
    sopt.max_inflight = 2;
    sopt.max_queue = 16;

    exec::ExecOptions eopt;
    eopt.num_threads = 2;
    auto ex = std::make_unique<exec::Executor>(eopt);
    auto snapshots = std::make_unique<served::SnapshotHandle>();
    StatusOr<std::unique_ptr<served::Server>> server =
        served::Server::Start(snapshots.get(), sopt, ex.get());
    LATENT_CHECK_MSG(server.ok(), "bench resilience daemon must start");
    LATENT_CHECK_MSG(
        server.value()->PublishSnapshot(BuildEngine(mined.value())).ok(),
        "bench publish must succeed");
    const int port = server.value()->port();

#if defined(LATENT_FAILPOINTS_ENABLED)
    LATENT_CHECK_MSG(
        run::failpoint::ArmFromSpec(
            "served.read=p:0.05;served.write=p:0.05;seed:42")
            .ok(),
        "bench fault schedule must parse");
#endif
    served::ResilientClientOptions ropt;
    ropt.retry.max_attempts = 6;
    ropt.retry.initial_backoff_ms = 2;
    ropt.retry.max_backoff_ms = 50;
    ropt.breaker_failures = 0;  // measure raw retries, not fast-fails
    ropt.metrics = &metrics;
    served::ResilientClient rc(port, ropt);
    constexpr int kResilientRounds = 3;
    for (int r = 0; r < kResilientRounds; ++r) {
      for (const served::WireRequest& req : workload.requests) {
        ++resilient_calls;
        StatusOr<served::WireResponse> resp = rc.Call(req);
        if (!resp.ok() || resp.value().code != StatusCode::kOk) {
          ++resilient_errors;
        }
      }
    }
    run::failpoint::DisarmAll();

    // Clean teardown, then a fresh daemon on the same port: the recovery
    // latency is the client-observed wall time from "restart begins" to
    // the first successful answer, engine rebuild included.
    std::unique_ptr<const serve::QueryEngine> next =
        BuildEngine(mined.value());
    server.value()->RequestShutdown();
    (void)server.value()->Wait();
    server.value().reset();
    WallTimer recovery_timer;
    served::ServedOptions ropt2 = sopt;
    ropt2.port = port;
    auto snapshots2 = std::make_unique<served::SnapshotHandle>();
    StatusOr<std::unique_ptr<served::Server>> restarted =
        served::Server::Start(snapshots2.get(), ropt2, ex.get());
    LATENT_CHECK_MSG(restarted.ok(), "bench restart must bind the same port");
    LATENT_CHECK_MSG(
        restarted.value()->PublishSnapshot(std::move(next)).ok(),
        "bench publish must succeed");
    StatusOr<served::WireResponse> back = rc.Call(workload.requests[0]);
    LATENT_CHECK_MSG(back.ok() && back.value().code == StatusCode::kOk,
                     "client must recover across the restart");
    recovery_ms = recovery_timer.Seconds() * 1e3;
    restarted.value()->RequestShutdown();
    (void)restarted.value()->Wait();

    resilient_retries =
        static_cast<long long>(metrics.CounterValue("client.retries"));
    resilient_reconnects =
        static_cast<long long>(metrics.CounterValue("client.reconnects"));
  }

  // ---- Swap pause under live traffic ------------------------------------
  constexpr int kSwaps = 30;
  std::vector<double> swap_us;
  {
    exec::ExecOptions eopt;
    eopt.num_threads = 2;
    exec::Executor ex(eopt);
    served::SnapshotHandle snapshots;
    served::ServedOptions sopt;
    sopt.max_inflight = 2;
    sopt.max_queue = 16;
    StatusOr<std::unique_ptr<served::Server>> server =
        served::Server::Start(&snapshots, sopt, &ex);
    LATENT_CHECK_MSG(server.ok(), "bench swap daemon must start");
    LATENT_CHECK_MSG(
        server.value()->PublishSnapshot(BuildEngine(mined.value())).ok(),
        "bench publish must succeed");
    std::atomic<bool> stop{false};
    std::atomic<long long> traffic_errors{0};
    std::thread traffic([&] {
      served::Client client;
      if (!client.Connect(server.value()->port()).ok()) return;
      size_t i = 0;
      while (!stop.load()) {
        StatusOr<served::WireResponse> resp =
            client.Call(workload.requests[i++ % workload.requests.size()]);
        if (!resp.ok() || resp.value().code != StatusCode::kOk) {
          traffic_errors.fetch_add(1);
          return;
        }
      }
    });
    for (int s = 0; s < kSwaps; ++s) {
      // Engine build happens outside the timed region: the pause under
      // test is the publish, not the (background) index construction.
      std::unique_ptr<const serve::QueryEngine> next =
          BuildEngine(mined.value());
      WallTimer timer;
      LATENT_CHECK_MSG(
          server.value()->PublishSnapshot(std::move(next)).ok(),
          "bench swap must succeed");
      swap_us.push_back(timer.Seconds() * 1e6);
    }
    stop.store(true);
    traffic.join();
    LATENT_CHECK_MSG(traffic_errors.load() == 0,
                     "traffic failed during hot swaps");
    server.value()->RequestShutdown();
    (void)server.value()->Wait();
  }
  std::sort(swap_us.begin(), swap_us.end());
  double swap_sum = 0.0;
  for (double v : swap_us) swap_sum += v;
  const double swap_mean_us = swap_sum / swap_us.size();
  const double swap_max_us = swap_us.back();

  std::printf(
      "{\n"
      "  \"workload_queries\": %zu,\n"
      "  \"client_threads\": %d,\n"
      "  \"cold_qps\": %.1f,\n"
      "  \"warm_qps\": %.1f,\n"
      "  \"overload\": {\n"
      "    \"offered\": %lld,\n"
      "    \"served\": %lld,\n"
      "    \"shed\": %lld,\n"
      "    \"shed_rate\": %.3f,\n"
      "    \"shed_mean_wait_ms\": %.2f\n"
      "  },\n"
      "  \"resilience\": {\n"
      "    \"calls\": %lld,\n"
      "    \"errors\": %lld,\n"
      "    \"retries\": %lld,\n"
      "    \"reconnects\": %lld,\n"
      "    \"restart_recovery_ms\": %.1f\n"
      "  },\n"
      "  \"swap\": {\n"
      "    \"publishes\": %d,\n"
      "    \"pause_mean_us\": %.1f,\n"
      "    \"pause_max_us\": %.1f\n"
      "  }\n"
      "}\n",
      workload.requests.size(), kClientThreads, cold_qps, warm_qps, offered,
      served_ok, shed, offered > 0 ? static_cast<double>(shed) / offered : 0.0,
      shed > 0 ? shed_wait_total_ms / shed : 0.0, resilient_calls,
      resilient_errors, resilient_retries, resilient_reconnects, recovery_ms,
      kSwaps, swap_mean_us, swap_max_us);
  return 0;
}
