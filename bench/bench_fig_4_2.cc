// Reproduces Figure 4.2: mutual information MI@K between phrase-represented
// topics and document labels on the labeled arXiv-like corpus, as a
// function of K, for kpRel, kpRelInt*, KERT-pop-only, KERT-pur-only,
// KERT-pop+pur, and full KERT.
//
// Paper shape to reproduce: KERT(pop+pur) best (> 20% over baselines for
// mid K); popularity-only ~ baselines; purity-only by far the worst.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/kp_rank.h"
#include "bench_util.h"
#include "core/builder.h"
#include "eval/mutual_info.h"
#include "phrase/frequent_miner.h"
#include "phrase/kert.h"

int main() {
  using namespace latent;
  std::printf("Figure 4.2: MI@K on the arXiv-like labeled corpus "
              "(k=5 topics)\n\n");

  data::HinDataset ds =
      data::GenerateHinDataset(data::ArxivLikeOptions(6000, 52));

  hin::HeteroNetwork net = hin::BuildTermCooccurrenceNetwork(ds.corpus);
  core::BuildOptions bopt;
  bopt.levels_k = {5};
  bopt.max_depth = 1;
  bopt.cluster.background = false;
  bopt.cluster.restarts = 3;
  bopt.cluster.max_iters = 80;
  bopt.cluster.seed = 35;
  core::TopicHierarchy tree = core::BuildHierarchy(net, bopt);

  phrase::MinerOptions mopt;
  mopt.min_support = 5;
  phrase::PhraseDict dict = phrase::MineFrequentPhrases(ds.corpus, mopt);
  phrase::KertScorer kert(ds.corpus, dict, tree);
  const std::vector<int> topics = tree.NodesAtLevel(1);

  // Criterion-specific rankings built from the exposed KERT criteria.
  const double mu = 3.0;
  auto rank_by = [&](int node, auto score_fn) {
    std::vector<Scored<int>> scores;
    for (int p = 0; p < dict.size(); ++p) {
      if (kert.TopicalFrequency(node, p) < mu) continue;
      scores.emplace_back(p, score_fn(node, p));
    }
    return TopK(std::move(scores), size_t{800});
  };

  struct Method {
    std::string name;
    std::vector<std::vector<Scored<int>>> rankings;
  };
  std::vector<Method> methods;
  auto add = [&](const std::string& name, auto fn) {
    Method m;
    m.name = name;
    for (int node : topics) m.rankings.push_back(fn(node));
    methods.push_back(std::move(m));
  };

  phrase::KertOptions kopt;
  add("KERT(pop+pur)", [&](int node) {
    return rank_by(node, [&](int n, int p) {
      return kert.Popularity(n, p, mu) * kert.Purity(n, p, mu);
    });
  });
  add("KERT", [&](int node) { return kert.RankTopic(node, kopt, 800); });
  add("KERTpop", [&](int node) {
    return rank_by(node,
                   [&](int n, int p) { return kert.Popularity(n, p, mu); });
  });
  add("kpRel",
      [&](int node) { return baselines::KpRelRank(kert, node, 800); });
  add("kpRelInt*",
      [&](int node) { return baselines::KpRelIntRank(kert, node, 800); });
  add("KERTpur", [&](int node) {
    return rank_by(node, [&](int n, int p) { return kert.Purity(n, p, mu); });
  });

  const std::vector<int> ks = {50, 100, 200, 300, 400, 600};
  std::vector<std::string> header = {"method"};
  for (int k : ks) header.push_back("MI@" + std::to_string(k));
  bench::PrintHeader(header, 10);
  for (const Method& m : methods) {
    std::vector<double> row;
    for (int k : ks) {
      row.push_back(eval::MutualInformationAtK(ds.corpus, ds.doc_area, 5,
                                               dict, m.rankings, k));
    }
    bench::PrintRow(m.name, row, 10);
  }
  std::printf("\nPaper shape: pop+pur on top, purity-only far below, "
              "popularity-only ~ baselines.\n");
  return 0;
}
