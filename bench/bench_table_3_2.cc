// Reproduces Table 3.2: heterogeneous pointwise mutual information on the
// DBLP-like network — the full collection ("20 conferences") and one area's
// subset ("Database area") — for TopK, NetClus, and CATHYHIN with equal /
// normalized / learned link-type weights.
//
// Paper shape to reproduce: TopK < NetClus < CATHYHIN(equal) and
// CATHYHIN(learn weight) posts the best Overall score on both datasets.
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/entity_lda.h"
#include "baselines/netclus.h"
#include "baselines/topk_baseline.h"
#include "bench_util.h"
#include "core/clusterer.h"
#include "eval/hpmi.h"

namespace latent {
namespace {

using bench::PrintHeader;
using bench::PrintRow;

// Runs one dataset: prints one row per method with per-link-type HPMI plus
// the overall average.
void RunDataset(const data::HinDataset& ds, int k, const char* title) {
  std::printf("\n== %s (k=%d, %d docs) ==\n", title, k, ds.corpus.num_docs());
  eval::HpmiEvaluator hpmi(ds.corpus, ds.entity_type_sizes, ds.entity_docs);
  PrintHeader({"method", "Term-Term", "Term-Auth", "Auth-Auth", "Term-Venue",
               "Auth-Venue", "Overall"});

  auto report = [&](const std::string& name,
                    const std::vector<std::vector<std::vector<int>>>& topics) {
    auto per_type = hpmi.PerTypeAverage(topics);
    PrintRow(name, {per_type[0][0], per_type[0][1], per_type[1][1],
                    per_type[0][2], per_type[1][2],
                    hpmi.AverageOverall(topics)});
  };

  hin::HeteroNetwork net = hin::BuildCollapsedNetwork(
      ds.corpus, ds.entity_type_names, ds.entity_type_sizes, ds.entity_docs);

  // TopK pseudo-topic (one "topic").
  report("TopK", {baselines::TopKPseudoTopic(net, 10)});

  // NetClus.
  baselines::NetClusOptions nopt;
  nopt.num_clusters = k;
  nopt.smoothing = 0.3;
  nopt.max_iters = 30;
  nopt.seed = 7;
  baselines::NetClusResult nc = baselines::RunNetClus(
      ds.corpus, ds.entity_type_sizes, ds.entity_docs, nopt);
  {
    std::vector<std::vector<std::vector<int>>> topics;
    for (int z = 0; z < k; ++z) {
      topics.push_back(bench::TopNodesFromPhi(nc.phi[z], 10, 3));
    }
    report("NetClus", topics);
  }

  // Entity-enriched LDA (Section 2.2.3 category iii baseline).
  {
    baselines::EntityLdaOptions eopt;
    eopt.num_topics = k;
    eopt.iterations = 60;
    eopt.seed = 29;
    baselines::EntityLdaResult el = baselines::FitEntityLda(
        ds.corpus, ds.entity_type_sizes, ds.entity_docs, eopt);
    std::vector<std::vector<std::vector<int>>> topics;
    for (int z = 0; z < k; ++z) {
      topics.push_back(bench::TopNodesFromPhi(el.phi[z], 10, 3));
    }
    report("EntityLDA", topics);
  }

  // CATHYHIN variants.
  auto run_cathyhin = [&](core::LinkWeightMode mode, const std::string& name) {
    core::ClusterOptions copt;
    copt.num_topics = k;
    copt.background = true;
    copt.weight_mode = mode;
    copt.restarts = 2;
    copt.max_iters = 80;
    copt.seed = 13;
    core::ClusterResult r =
        core::FitCluster(net, core::DegreeDistributions(net), copt);
    std::vector<std::vector<std::vector<int>>> topics;
    for (int z = 0; z < k; ++z) {
      topics.push_back(bench::TopNodesFromPhi(r.phi[z], 10, 3));
    }
    report(name, topics);
  };
  run_cathyhin(core::LinkWeightMode::kEqual, "CATHYHIN (equal weight)");
  run_cathyhin(core::LinkWeightMode::kNormalized, "CATHYHIN (norm weight)");
  run_cathyhin(core::LinkWeightMode::kLearned, "CATHYHIN (learn weight)");
}

}  // namespace
}  // namespace latent

int main() {
  using namespace latent;
  std::printf("Table 3.2: HPMI on the DBLP-like network "
              "(synthetic stand-in; see DESIGN.md)\n");
  data::HinDataset full =
      data::GenerateHinDataset(data::DblpLikeOptions(6000, 42));
  RunDataset(full, /*k=*/6, "DBLP (20 Conferences analogue)");
  data::HinDataset db = bench::SubsetByArea(full, 0);
  RunDataset(db, /*k=*/4, "DBLP (Database-area analogue)");
  return 0;
}
