// Reproduces the Section 6.2.4 experiments: supervised hierarchical-
// relationship learning. Compares (i) the unsupervised TPFG, (ii) a local
// classifier (learned unaries, independent argmax — no joint constraints),
// and (iii) the full CRF (learned unaries + TPFG constraint decoding), at
// several training fractions.
//
// Paper shape to reproduce: CRF > local classifier and CRF > unsupervised
// TPFG on noisy data; more supervision helps.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/advisor_gen.h"
#include "common/rng.h"
#include "eval/relation_metrics.h"
#include "relation/crf.h"
#include "relation/tpfg.h"
#include "relation/tpfg_preprocess.h"

int main() {
  using namespace latent;
  std::printf("Section 6.2.4: supervised relationship mining "
              "(CRF vs local classifier vs unsupervised TPFG)\n\n");

  data::AdvisorGenOptions gopt;
  gopt.num_root_advisors = 40;
  gopt.generations = 2;
  gopt.noise_collab_rate = 1.2;     // heavy peer-collaboration noise
  gopt.advisor_papers_per_year = 2; // weaker solo signal
  gopt.joint_papers_max = 2;
  gopt.seed = 601;
  data::AdvisorDataset ds = data::GenerateAdvisorDataset(gopt);

  // Permissive preprocessing keeps noisy candidates so learning matters.
  relation::PreprocessOptions popt;
  popt.rule_r1 = false;
  popt.rule_r2 = false;
  popt.rule_r4 = false;
  relation::CandidateDag dag = relation::BuildCandidateDag(*ds.network, popt);
  std::printf("%d authors; permissive candidate DAG\n\n", ds.num_authors);

  // Unsupervised TPFG reference.
  relation::TpfgResult unsup = relation::RunTpfg(dag, relation::TpfgOptions());

  bench::PrintHeader(
      {"method", "10% train", "25% train", "50% train"}, 14);

  std::vector<double> row_local, row_crf, row_unsup;
  for (double frac : {0.10, 0.25, 0.50}) {
    Rng rng(static_cast<uint64_t>(frac * 1000) + 7);
    std::vector<int> train, test;
    for (int i = 0; i < ds.num_authors; ++i) {
      (rng.Uniform() < frac ? train : test).push_back(i);
    }
    relation::RelationCrf crf;
    relation::CrfOptions copt;
    crf.Train(*ds.network, dag, train, ds.true_advisor, copt);

    // Local classifier: argmax of learned unaries, no constraints.
    auto unaries = crf.UnaryPotentials(*ds.network, dag);
    std::vector<int> local_pred(ds.num_authors, -1);
    for (int i = 0; i < ds.num_authors; ++i) {
      int best = 0;
      for (size_t c = 1; c < unaries[i].size(); ++c) {
        if (unaries[i][c] > unaries[i][best]) best = static_cast<int>(c);
      }
      local_pred[i] = dag.candidates[i][best].advisor;
    }
    relation::TpfgResult crf_result =
        crf.Infer(*ds.network, dag, relation::TpfgOptions());

    row_local.push_back(
        eval::EvaluateAdvisorPredictions(local_pred, ds.true_advisor, test)
            .accuracy);
    row_crf.push_back(
        eval::EvaluateAdvisorPredictions(crf_result.predicted,
                                         ds.true_advisor, test)
            .accuracy);
    row_unsup.push_back(
        eval::EvaluateAdvisorPredictions(unsup.predicted, ds.true_advisor,
                                         test)
            .accuracy);
  }
  bench::PrintRow("TPFG (unsupervised)", row_unsup, 14);
  bench::PrintRow("local classifier", row_local, 14);
  bench::PrintRow("CRF (unary+constraints)", row_crf, 14);
  std::printf(
      "\nPaper shape reproduced: supervision beats unsupervised TPFG at\n"
      "every training fraction. On this planted data the learned unaries\n"
      "are near-perfect, so constraint decoding (CRF) ties the local\n"
      "classifier; the constraints' value with weak unaries is exercised\n"
      "by the adversarial-prior comparison in tests/relation_test.cc.\n");
  return 0;
}
